// Reproduces Fig. 7: movement traces of the UGV-UAV coalitions over 100
// slots (U=4, V'=2) for GARL and the four strongest baselines (AE-Comm,
// DGN, GAM, GAT) on both campuses.
//
// Full traces are written as CSVs (one row per slot per vehicle) for
// plotting; the console summarizes the trajectory statistics behind the
// paper's qualitative reading: GARL partitions the workzone into
// per-coalition sub-workzones (low overlap between the stop sets visited
// by different UGVs) without wasteful wandering.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <set>

#include "baselines/registry.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "env/render.h"
#include "nn/ops.h"
#include "rl/evaluator.h"
#include "rl/ippo_trainer.h"
#include "rl/rollout.h"
#include "rl/uav_controller.h"

namespace garl::bench {
namespace {

struct TraceStats {
  double ugv_distance = 0.0;   // meters, summed over UGVs
  double stop_overlap = 0.0;   // mean pairwise Jaccard of visited stops
  int64_t stops_visited = 0;   // distinct stops visited by the fleet
  double efficiency = 0.0;
};

TraceStats RunTrace(const std::string& campus, const std::string& method,
                    const BenchOptions& options, const std::string& csv) {
  std::unique_ptr<env::World> world = MakeWorld(campus, 4, 2, 100);
  rl::EnvContext context = rl::MakeEnvContext(*world);
  Rng rng(11);
  auto policy = std::move(baselines::MakeUgvPolicy(
                              method, context, baselines::MethodOptions(),
                              rng))
                    .value();
  rl::TrainConfig train;
  train.iterations = options.train_iterations;
  train.seed = 5;
  rl::IppoTrainer trainer(world.get(), policy.get(), nullptr, train);
  auto train_result = trainer.Train();
  GARL_CHECK_MSG(train_result.ok(), train_result.status().ToString());

  // One recorded evaluation episode.
  world->Reset(99);
  Rng act_rng(17);
  rl::GreedyUavController uav_controller;
  std::vector<std::set<int64_t>> visited(4);
  while (!world->Done()) {
    std::vector<env::UgvObservation> observations;
    for (int64_t u = 0; u < 4; ++u) {
      observations.push_back(world->ObserveUgv(u));
    }
    std::vector<rl::UgvPolicyOutput> outputs;
    {
      nn::NoGradGuard no_grad;
      outputs = policy->Forward(observations);
    }
    std::vector<env::UgvAction> ugv_actions(4);
    for (int64_t u = 0; u < 4; ++u) {
      if (world->UgvNeedsAction(u)) {
        ugv_actions[static_cast<size_t>(u)] =
            rl::SampleUgvAction(outputs[static_cast<size_t>(u)], act_rng,
                                /*greedy=*/false)
                .action;
      }
      visited[static_cast<size_t>(u)].insert(
          world->ugvs()[static_cast<size_t>(u)].current_stop);
    }
    std::vector<env::UavAction> uav_actions(8);
    for (int64_t v = 0; v < 8; ++v) {
      if (world->UavAirborne(v)) {
        uav_actions[static_cast<size_t>(v)] =
            uav_controller.Act(*world, v, act_rng);
      }
    }
    world->Step(ugv_actions, uav_actions);
  }

  // Dump an SVG rendering of the traces next to the CSV.
  {
    std::string svg = env::RenderTracesSvg(world->campus(), &world->stops(),
                                           world->ugv_trace(),
                                           world->uav_trace());
    std::string svg_path = csv.substr(0, csv.size() - 4) + ".svg";
    WarnIfError(env::WriteSvg(svg, svg_path), "bench_fig7: write " + svg_path);
  }

  // Dump traces.
  TableWriter trace({"slot", "vehicle", "kind", "x", "y"});
  for (int64_t u = 0; u < 4; ++u) {
    const auto& points = world->ugv_trace()[static_cast<size_t>(u)];
    for (size_t t = 0; t < points.size(); ++t) {
      trace.AddRow({std::to_string(t), StrPrintf("ugv%lld",
                                                 static_cast<long long>(u)),
                    "UGV", StrPrintf("%.1f", points[t].x),
                    StrPrintf("%.1f", points[t].y)});
    }
  }
  for (int64_t v = 0; v < 8; ++v) {
    const auto& points = world->uav_trace()[static_cast<size_t>(v)];
    for (size_t t = 0; t < points.size(); ++t) {
      trace.AddRow({std::to_string(t), StrPrintf("uav%lld",
                                                 static_cast<long long>(v)),
                    "UAV", StrPrintf("%.1f", points[t].x),
                    StrPrintf("%.1f", points[t].y)});
    }
  }
  WarnIfError(trace.WriteCsv(csv), "bench_fig7: write " + csv);

  TraceStats stats;
  for (const env::UgvState& ugv : world->ugvs()) {
    stats.ugv_distance += ugv.distance_traveled;
  }
  std::set<int64_t> all;
  double overlap = 0.0;
  int pairs = 0;
  for (int64_t a = 0; a < 4; ++a) {
    all.insert(visited[static_cast<size_t>(a)].begin(),
               visited[static_cast<size_t>(a)].end());
    for (int64_t b = a + 1; b < 4; ++b) {
      std::set<int64_t> inter, uni;
      std::set_intersection(visited[a].begin(), visited[a].end(),
                            visited[b].begin(), visited[b].end(),
                            std::inserter(inter, inter.begin()));
      std::set_union(visited[a].begin(), visited[a].end(),
                     visited[b].begin(), visited[b].end(),
                     std::inserter(uni, uni.begin()));
      overlap += uni.empty() ? 0.0
                             : static_cast<double>(inter.size()) /
                                   static_cast<double>(uni.size());
      ++pairs;
    }
  }
  stats.stop_overlap = overlap / pairs;
  stats.stops_visited = static_cast<int64_t>(all.size());
  stats.efficiency = world->Metrics().efficiency;
  return stats;
}

void Run() {
  BenchOptions options = LoadBenchOptions();
  const std::vector<std::string> methods = {"GARL", "AE-Comm", "DGN", "GAM",
                                            "GAT"};
  for (const std::string& campus : {std::string("KAIST"),
                                    std::string("UCLA")}) {
    TableWriter table({"method", "UGV km", "stops visited",
                       "pairwise overlap", "lambda"});
    for (const std::string& method : methods) {
      std::string csv = options.out_dir + "/fig7_" + campus + "_" + method +
                        ".csv";
      TraceStats stats = RunTrace(campus, method, options, csv);
      table.AddRow({method, StrPrintf("%.2f", stats.ugv_distance / 1000.0),
                    std::to_string(stats.stops_visited),
                    StrPrintf("%.3f", stats.stop_overlap),
                    StrPrintf("%.3f", stats.efficiency)});
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf(
        "\nFig. 7 (%s) — 100-slot traces (CSVs in %s/fig7_%s_*.csv)\n",
        campus.c_str(), options.out_dir.c_str(), campus.c_str());
    table.Print(std::cout);
    std::printf(
        "Paper shape: GARL visits many stops with the lowest pairwise "
        "overlap (clean sub-workzones).\n");
  }
}

}  // namespace
}  // namespace garl::bench

int main() {
  garl::bench::Run();
  return 0;
}
