// Reproduces Table II: impact of the number of MC-GCN layers L^MC and
// E-Comm layers L^E on all five metrics (U=4, V'=2, both campuses).
//
// Paper result: both sweeps peak at 3 layers — too-shallow stacks see too
// little of the stop network / fleet, too-deep ones over-smooth.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_writer.h"

namespace garl::bench {
namespace {

void Run() {
  BenchOptions options = LoadBenchOptions();
  const std::vector<int64_t> depths = {1, 2, 3, 4, 5};
  const char* metric_names[] = {"lambda", "psi", "xi", "zeta", "beta"};

  for (const std::string& campus : {std::string("KAIST"),
                                    std::string("UCLA")}) {
    for (bool sweep_mc : {true, false}) {
      std::vector<std::string> header = {"metric"};
      for (int64_t depth : depths) header.push_back(std::to_string(depth));
      TableWriter table(header);
      // Collect per-depth metrics first (cache makes repeats free).
      std::vector<env::EpisodeMetrics> per_depth;
      for (int64_t depth : depths) {
        baselines::MethodOptions method;
        if (sweep_mc) {
          method.mc_layers = depth;
        } else {
          method.e_layers = depth;
        }
        per_depth.push_back(
            AveragedRun(campus, 4, 2, "GARL", options, method));
        std::printf(".");
        std::fflush(stdout);
      }
      for (const char* metric : metric_names) {
        std::vector<std::string> row = {metric};
        for (const env::EpisodeMetrics& m : per_depth) {
          row.push_back(StrPrintf("%.4f", MetricValue(m, metric)));
        }
        table.AddRow(row);
      }
      std::printf("\nTable II (%s) — impact of %s in {1..5} (U=4, V'=2)\n",
                  campus.c_str(), sweep_mc ? "L^MC" : "L^E");
      table.Print(std::cout);
      std::string csv = options.out_dir + "/table2_" + campus + "_" +
                        (sweep_mc ? "Lmc" : "Le") + ".csv";
      WarnIfError(table.WriteCsv(csv), "bench_table2: write " + csv);
    }
  }
  std::printf(
      "\nPaper shape to check: every metric row peaks at 3 layers for both"
      " L^MC and L^E.\n");
}

}  // namespace
}  // namespace garl::bench

int main() {
  garl::bench::Run();
  return 0;
}
