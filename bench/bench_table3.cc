// Reproduces Table III: ablation study of GARL's two components (U=4,
// V'=2, both campuses). Rows: GARL, GARL w/o MC, GARL w/o E,
// GARL w/o MC, E; columns: lambda, psi, xi, zeta, beta.
//
// Paper shape: GARL > GARL w/o E > GARL w/o MC > GARL w/o MC, E in
// efficiency on both campuses, with the gaps larger on the more complex
// UCLA landscape.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_writer.h"

namespace garl::bench {
namespace {

void Run() {
  BenchOptions options = LoadBenchOptions();
  for (const std::string& campus : {std::string("KAIST"),
                                    std::string("UCLA")}) {
    TableWriter table({"variant", "lambda", "psi", "xi", "zeta", "beta"});
    for (const std::string& method : baselines::AblationMethods()) {
      env::EpisodeMetrics m = AveragedRun(campus, 4, 2, method, options);
      table.AddRow(method,
                   {m.efficiency, m.data_collection_ratio, m.fairness,
                    m.cooperation_factor, m.energy_ratio});
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\nTable III (%s) — ablation study (U=4, V'=2)\n",
                campus.c_str());
    table.Print(std::cout);
    WarnIfError(table.WriteCsv(options.out_dir + "/table3_" + campus + ".csv"),
                "bench_table3: write csv");
  }
}

}  // namespace
}  // namespace garl::bench

int main() {
  garl::bench::Run();
  return 0;
}
