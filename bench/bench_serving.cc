// bench_serving — throughput and latency-SLO numbers for the policy-serving
// front door (src/serve). Writes BENCH_serving.json:
//
//   sync:  large caller-assembled ServeBatch fan-outs -> decisions/sec
//   async: Submit-queue round trips -> p50/p95/p99/p99.9 latency (us)
//
// Flags: --reps N (measurement repetitions, default 3; --reps 1 is the CI
// smoke), --requests N (per rep, default 256), --batch N (async drain
// limit, default 64), --json PATH (default BENCH_serving.json),
// --baseline PATH (compare against a previous report: >10% regression in
// sync per-request seconds or async p99 exits 1, the bench_kernels
// baseline-gate contract).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_compare.h"
#include "common/fs_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/garl_extractor.h"
#include "core/serving_plan.h"
#include "env/world.h"
#include "obs/clock.h"
#include "serve/policy_server.h"

namespace garl {
namespace {

env::CampusSpec BenchCampus() {
  env::CampusSpec campus;
  campus.name = "serving_bench";
  campus.width = 600;
  campus.height = 600;
  campus.roads.push_back({{0, 200}, {600, 200}});
  campus.roads.push_back({{0, 400}, {600, 400}});
  campus.roads.push_back({{200, 0}, {200, 600}});
  campus.roads.push_back({{400, 0}, {400, 600}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  campus.sensors.push_back({{260, 190}, 1200.0});
  campus.sensors.push_back({{200, 420}, 900.0});
  campus.sensors.push_back({{410, 390}, 1100.0});
  campus.sensors.push_back({{390, 180}, 800.0});
  return campus;
}

struct BenchFlags {
  int64_t reps = 3;
  int64_t requests = 256;
  int64_t batch = 64;
  std::string json_path = "BENCH_serving.json";
  std::string baseline_path;
};

bool ParseFlags(int argc, char** argv, BenchFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      flags->reps = std::atoll(argv[++i]);
    } else if (arg == "--requests" && i + 1 < argc) {
      flags->requests = std::atoll(argv[++i]);
    } else if (arg == "--batch" && i + 1 < argc) {
      flags->batch = std::atoll(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      flags->json_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      flags->baseline_path = argv[++i];
    } else {
      std::fprintf(stderr, "bench_serving: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return flags->reps > 0 && flags->requests > 0 && flags->batch > 0;
}

// Flat string scan over a previous report (the bench_kernels idiom: the
// reports are flat enough that a JSON parser would be overkill). Returns
// false when the key is missing (older schema).
bool ScanNumberAfter(const std::string& text, size_t from,
                     const std::string& key, double* value) {
  size_t at = text.find(key, from);
  if (at == std::string::npos) return false;
  size_t colon = text.find(':', at + key.size());
  if (colon == std::string::npos) return false;
  *value = std::atof(text.c_str() + colon + 1);
  return true;
}

// Gate on the two SLO-shaped numbers: sync per-request seconds (1/rps, so
// the >tolerance direction means "slower") and async p99 latency. Both run
// through bench::CompareToBaseline, which skips non-comparable baselines
// (zeros, sub-resolution values, corrupt files) instead of failing.
int CompareAgainstBaseline(const std::string& baseline_path,
                           double sync_rps, double p99_us) {
  StatusOr<std::string> baseline = ReadFileToString(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_serving: cannot read baseline %s: %s\n",
                 baseline_path.c_str(),
                 baseline.status().ToString().c_str());
    return 1;
  }
  const std::string& text = baseline.value();
  constexpr double kTolerance = 1.10;  // fail on >10% regression
  int failures = 0;

  struct GatedCase {
    const char* label;
    const char* key;
    double measured_seconds;
    bool invert;  // baseline field is a rate: compare 1/value
  };
  const GatedCase cases[] = {
      {"sync_request_seconds", "\"sync_requests_per_s\"",
       sync_rps > 0.0 ? 1.0 / sync_rps : 0.0, true},
      {"async_p99_seconds", "\"p99\"", p99_us / 1e6, false},
  };
  for (const GatedCase& c : cases) {
    double base_raw = 0.0;
    if (!ScanNumberAfter(text, 0, c.key, &base_raw)) {
      std::printf("baseline %s: not present, skipped\n", c.label);
      continue;
    }
    const double base_seconds =
        c.invert ? (base_raw > 0.0 ? 1.0 / base_raw : 0.0) : base_raw / 1e6;
    bench::BaselineComparison cmp = bench::CompareToBaseline(
        base_seconds, c.measured_seconds, kTolerance);
    if (!cmp.comparable) {
      std::printf("baseline %s: %.3gs is below the comparability floor, "
                  "skipped\n",
                  c.label, base_seconds);
      continue;
    }
    std::printf("baseline %s: %.3gs -> %.3gs %s\n", c.label, base_seconds,
                c.measured_seconds, cmp.regressed ? "REGRESSED" : "OK");
    if (cmp.regressed) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_serving: %d case(s) regressed >10%% vs %s\n",
                 failures, baseline_path.c_str());
    return 1;
  }
  return 0;
}

int Run(const BenchFlags& flags) {
  env::WorldParams params;
  params.num_ugvs = 4;
  params.uavs_per_ugv = 1;
  params.horizon = 40;
  params.release_slots = 2;
  env::World world(BenchCampus(), params);
  rl::EnvContext context = rl::MakeEnvContext(world);
  Rng rng(11);
  rl::FeatureUgvPolicy policy(
      std::make_unique<core::GarlExtractor>(context, core::GarlConfig{}, rng),
      context, rl::FeaturePolicyOptions{}, rng);
  StatusOr<core::ServingPlan> plan = core::ServingPlan::Compile(policy,
                                                                context);
  if (!plan.ok()) {
    std::fprintf(stderr, "bench_serving: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  // A fixed cross-episode request pool: every UGV's joint observation at
  // several points of a rolled-out episode.
  std::vector<std::vector<env::UgvObservation>> pool;
  {
    env::World episode(BenchCampus(), params);
    std::vector<env::UavAction> idle(
        static_cast<size_t>(episode.num_uavs()));
    while (!episode.Done()) {
      std::vector<env::UgvObservation> request;
      for (int64_t u = 0; u < params.num_ugvs; ++u) {
        request.push_back(episode.ObserveUgv(u));
      }
      pool.push_back(std::move(request));
      std::vector<env::UgvAction> actions(
          static_cast<size_t>(params.num_ugvs));
      for (int64_t u = 0; u < params.num_ugvs; ++u) {
        actions[static_cast<size_t>(u)].release = (episode.slot() % 3 == 2);
        actions[static_cast<size_t>(u)].target_stop =
            (episode.slot() + u) % context.num_stops;
      }
      episode.Step(actions, idle);
    }
  }

  serve::PolicyServerOptions options;
  options.max_batch = flags.batch;
  serve::PolicyServer server(&plan.value(), options);

  // Sync throughput: the full request set as repeated large batches.
  std::vector<std::vector<env::UgvObservation>> batch;
  for (int64_t r = 0; r < flags.requests; ++r) {
    batch.push_back(pool[static_cast<size_t>(r) % pool.size()]);
  }
  double best_sync_rps = 0.0;
  std::vector<serve::ServeResult> results;
  for (int64_t rep = 0; rep < flags.reps; ++rep) {
    const int64_t start_ns = obs::MonotonicNowNs();
    server.ServeBatch(batch, &results);
    const double secs =
        static_cast<double>(obs::MonotonicNowNs() - start_ns) / 1e9;
    for (const serve::ServeResult& result : results) {
      if (!result.status.ok()) {
        std::fprintf(stderr, "bench_serving: request failed: %s\n",
                     result.status.ToString().c_str());
        return 1;
      }
    }
    if (secs > 0.0) {
      best_sync_rps = std::max(
          best_sync_rps, static_cast<double>(flags.requests) / secs);
    }
  }
  const double decisions_per_request = static_cast<double>(params.num_ugvs);

  // Async latency: saturate the queue, then wait for every future.
  const int64_t async_start_ns = obs::MonotonicNowNs();
  std::vector<std::future<serve::ServeResult>> futures;
  futures.reserve(static_cast<size_t>(flags.requests));
  for (int64_t r = 0; r < flags.requests; ++r) {
    futures.push_back(
        server.Submit(pool[static_cast<size_t>(r) % pool.size()]));
  }
  for (auto& future : futures) {
    serve::ServeResult result = future.get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "bench_serving: async request failed: %s\n",
                   result.status.ToString().c_str());
      return 1;
    }
  }
  const double async_secs =
      static_cast<double>(obs::MonotonicNowNs() - async_start_ns) / 1e9;
  const obs::Histogram& latency = server.latency_histogram();

  std::string json = "{\n";
  json += StrPrintf("  \"bench\": \"serving\",\n");
  json += StrPrintf("  \"requests\": %lld,\n",
                    static_cast<long long>(flags.requests));
  json += StrPrintf("  \"reps\": %lld,\n", static_cast<long long>(flags.reps));
  json += StrPrintf("  \"batch\": %lld,\n",
                    static_cast<long long>(flags.batch));
  json += StrPrintf("  \"ugvs\": %lld,\n",
                    static_cast<long long>(params.num_ugvs));
  json += StrPrintf("  \"stops\": %lld,\n",
                    static_cast<long long>(context.num_stops));
  json += StrPrintf("  \"threads\": %lld,\n",
                    static_cast<long long>(ThreadPool::Global().num_threads()));
  json += StrPrintf("  \"sync_requests_per_s\": %.1f,\n", best_sync_rps);
  json += StrPrintf("  \"sync_decisions_per_s\": %.1f,\n",
                    best_sync_rps * decisions_per_request);
  json += StrPrintf(
      "  \"async_requests_per_s\": %.1f,\n",
      async_secs > 0.0 ? static_cast<double>(flags.requests) / async_secs
                       : 0.0);
  json += "  \"async_latency_us\": {\n";
  json += StrPrintf("    \"count\": %lld,\n",
                    static_cast<long long>(latency.count()));
  json += StrPrintf("    \"p50\": %.1f,\n", latency.P50());
  json += StrPrintf("    \"p95\": %.1f,\n", latency.P95());
  json += StrPrintf("    \"p99\": %.1f,\n", latency.P99());
  json += StrPrintf("    \"p999\": %.1f,\n", latency.P999());
  json += StrPrintf("    \"max\": %.1f\n", latency.max());
  json += "  },\n";
  // Robustness counters: an unconstrained bench run must be all-admitted
  // (every non-zero below means the run measured degradation, not serving).
  const serve::HealthSnapshot health = server.Health();
  json += "  \"admission\": {\n";
  json += StrPrintf("    \"queue_depth\": %lld,\n",
                    static_cast<long long>(health.queue_depth));
  json += StrPrintf("    \"shed\": %lld,\n",
                    static_cast<long long>(health.shed));
  json += StrPrintf("    \"rejected\": %lld,\n",
                    static_cast<long long>(health.rejected));
  json += StrPrintf("    \"deadline_misses\": %lld\n",
                    static_cast<long long>(health.deadline_misses));
  json += "  }\n}\n";

  Status write = WriteFileDurable(flags.json_path, json);
  if (!write.ok()) {
    std::fprintf(stderr, "bench_serving: cannot write %s: %s\n",
                 flags.json_path.c_str(), write.ToString().c_str());
    return 1;
  }
  std::printf("%s", json.c_str());
  std::printf("wrote %s\n", flags.json_path.c_str());
  if (!flags.baseline_path.empty()) {
    return CompareAgainstBaseline(flags.baseline_path, best_sync_rps,
                                  latency.P99());
  }
  return 0;
}

}  // namespace
}  // namespace garl

int main(int argc, char** argv) {
  garl::BenchFlags flags;
  if (!garl::ParseFlags(argc, argv, &flags)) {
    std::fprintf(stderr,
                 "usage: bench_serving [--reps N] [--requests N] [--batch N] "
                 "[--json PATH] [--baseline PATH]\n");
    return 2;
  }
  return garl::Run(flags);
}
