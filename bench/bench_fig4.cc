// Reproduces Fig. 4: data collection ratio psi across the same U / V'
// sweeps as Fig. 3.
//
// Paper shape: psi increases with U (more coalitions cover more ground)
// and with V' until UAV competition saturates it.

#include "bench_common.h"

int main() {
  garl::bench::BenchOptions options = garl::bench::LoadBenchOptions();
  garl::bench::RunFigureSweep("fig4", "psi", options);
  return 0;
}
