#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>

#include "common/check.h"
#include "common/env_flags.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "env/campus_factory.h"
#include "env/metrics.h"

namespace garl::bench {

BenchOptions LoadBenchOptions() {
  BenchOptions options;
  options.train_iterations = EnvInt("GARL_TRAIN_ITERS", 3);
  options.eval_episodes = EnvInt("GARL_EVAL_EPISODES", 1);
  options.horizon = EnvInt("GARL_EPISODE_SLOTS", 100);
  options.seeds = EnvInt("GARL_SEEDS", 2);
  options.full_sweep = EnvString("GARL_SWEEP", "small") == "full";
  options.out_dir = EnvString("GARL_OUT_DIR", "bench_out");
  return options;
}

std::unique_ptr<env::World> MakeWorld(const std::string& campus, int64_t u,
                                      int64_t v_prime, int64_t horizon) {
  env::WorldParams params;
  params.num_ugvs = u;
  params.uavs_per_ugv = v_prime;
  params.horizon = horizon;
  env::CampusSpec spec = (campus == "UCLA") ? env::MakeUclaCampus()
                                            : env::MakeKaistCampus();
  return std::make_unique<env::World>(std::move(spec), params);
}

namespace {

// Disk-backed memoization of (config -> metrics) shared by all benches.
class SweepCache {
 public:
  explicit SweepCache(const std::string& out_dir)
      : path_(out_dir + "/sweep_cache.csv") {
    WarnIfError(EnsureDirectory(out_dir), "bench: create output dir " + out_dir);
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) {
      std::vector<std::string> fields = Split(line, ';');
      if (fields.size() != 5u + 1u) continue;
      env::EpisodeMetrics m;
      m.data_collection_ratio = std::atof(fields[1].c_str());
      m.fairness = std::atof(fields[2].c_str());
      m.cooperation_factor = std::atof(fields[3].c_str());
      m.energy_ratio = std::atof(fields[4].c_str());
      m.efficiency = std::atof(fields[5].c_str());
      entries_[fields[0]] = m;
    }
  }

  bool Lookup(const std::string& key, env::EpisodeMetrics* metrics) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    *metrics = it->second;
    return true;
  }

  void Store(const std::string& key, const env::EpisodeMetrics& m) {
    entries_[key] = m;
    std::ofstream out(path_, std::ios::app);
    out << key << ";" << m.data_collection_ratio << ";" << m.fairness << ";"
        << m.cooperation_factor << ";" << m.energy_ratio << ";"
        << m.efficiency << "\n";
  }

 private:
  std::string path_;
  std::map<std::string, env::EpisodeMetrics> entries_;
};

}  // namespace

env::EpisodeMetrics AveragedRun(
    const std::string& campus, int64_t u, int64_t v_prime,
    const std::string& method, const BenchOptions& options,
    const baselines::MethodOptions& method_options) {
  static SweepCache* cache =  // garl-lint: allow-next-line(raw-new-delete) leaky static
      new SweepCache(LoadBenchOptions().out_dir);
  std::string key = StrPrintf(
      "%s|U=%lld|V=%lld|%s|mc=%lld|e=%lld|it=%lld|ep=%lld|T=%lld|s=%lld",
      campus.c_str(), static_cast<long long>(u),
      static_cast<long long>(v_prime), method.c_str(),
      static_cast<long long>(method_options.mc_layers),
      static_cast<long long>(method_options.e_layers),
      static_cast<long long>(options.train_iterations),
      static_cast<long long>(options.eval_episodes),
      static_cast<long long>(options.horizon),
      static_cast<long long>(options.seeds));
  env::EpisodeMetrics cached;
  if (cache->Lookup(key, &cached)) return cached;

  std::unique_ptr<env::World> world =
      MakeWorld(campus, u, v_prime, options.horizon);
  double psi = 0, xi = 0, zeta = 0, beta = 0;
  for (int64_t seed = 1; seed <= options.seeds; ++seed) {
    baselines::RunOptions run;
    run.method = method_options;
    run.train_iterations = options.train_iterations;
    run.eval_episodes = options.eval_episodes;
    run.seed = static_cast<uint64_t>(seed);
    baselines::RunResult result =
        baselines::TrainAndEvaluate(*world, method, run);
    psi += result.metrics.data_collection_ratio;
    xi += result.metrics.fairness;
    zeta += result.metrics.cooperation_factor;
    beta += result.metrics.energy_ratio;
  }
  double n = static_cast<double>(options.seeds);
  env::EpisodeMetrics metrics =
      env::MakeMetrics(psi / n, xi / n, zeta / n, beta / n);
  cache->Store(key, metrics);
  return metrics;
}

std::vector<int64_t> UgvGrid(const BenchOptions& options) {
  if (options.full_sweep) return {2, 4, 5, 6, 8, 10, 15, 20, 30};
  return {2, 4, 8, 12};
}

std::vector<int64_t> UavGrid(const BenchOptions& options) {
  if (options.full_sweep) return {1, 2, 3, 4, 5};
  return {1, 2, 4};
}

double MetricValue(const env::EpisodeMetrics& metrics,
                   const std::string& metric) {
  if (metric == "lambda") return metrics.efficiency;
  if (metric == "psi") return metrics.data_collection_ratio;
  if (metric == "xi") return metrics.fairness;
  if (metric == "zeta") return metrics.cooperation_factor;
  if (metric == "beta") return metrics.energy_ratio;
  GARL_CHECK_MSG(false, "unknown metric: " + metric);
  return 0.0;
}

void RunFigureSweep(const std::string& figure, const std::string& metric,
                    const BenchOptions& options) {
  struct Panel {
    const char* label;
    std::string campus;
    bool sweep_u;  // false: sweep V'
  };
  const Panel panels[] = {
      {"(a) KAIST (V'=2)", "KAIST", true},
      {"(b) UCLA (V'=2)", "UCLA", true},
      {"(c) KAIST (U=4)", "KAIST", false},
      {"(d) UCLA (U=4)", "UCLA", false},
  };
  for (const Panel& panel : panels) {
    std::vector<int64_t> grid =
        panel.sweep_u ? UgvGrid(options) : UavGrid(options);
    std::vector<std::string> header = {panel.sweep_u ? "U" : "V'"};
    for (const std::string& m : baselines::AllMethods()) header.push_back(m);
    TableWriter table(header);
    for (int64_t value : grid) {
      std::vector<std::string> row = {std::to_string(value)};
      for (const std::string& method : baselines::AllMethods()) {
        int64_t u = panel.sweep_u ? value : 4;
        int64_t v_prime = panel.sweep_u ? 2 : value;
        env::EpisodeMetrics m =
            AveragedRun(panel.campus, u, v_prime, method, options);
        row.push_back(StrPrintf("%.4f", MetricValue(m, metric)));
      }
      table.AddRow(row);
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n%s — %s vs %s\n", panel.label, metric.c_str(),
                panel.sweep_u ? "no. of UGVs (U)" : "no. of UAVs (V')");
    table.Print(std::cout);
    std::string csv = options.out_dir + "/" + figure + "_" +
                      std::string(1, panel.label[1]) + ".csv";
    Status status = table.WriteCsv(csv);
    if (!status.ok()) {
      std::fprintf(stderr, "CSV write failed: %s\n",
                   status.ToString().c_str());
    }
  }
}

}  // namespace garl::bench
