// Reproduces Table IV: computational complexity of all methods — per-UGV
// decision latency (ms) on both campuses, plus a memory estimate (MB).
//
// The paper measures GPU inference time and graphics-card memory; here the
// same forward passes run on CPU through the from-scratch tensor library,
// and memory is estimated as parameter + peak-activation footprint (see
// DESIGN.md, Substitutions). The comparison to check is *relative*:
// CubicMap and MADDPG are the heavy ones, GAT the lightest, GARL close to
// the other GNN methods.

#include <benchmark/benchmark.h>

#include <chrono>

#include <iostream>
#include <memory>

#include "baselines/registry.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "nn/ops.h"
#include "rl/policy.h"

namespace garl::bench {
namespace {

struct MethodSetup {
  std::unique_ptr<env::World> world;
  rl::EnvContext context;
  std::unique_ptr<rl::UgvPolicyNetwork> policy;
  std::vector<env::UgvObservation> observations;
};

MethodSetup MakeSetup(const std::string& campus, const std::string& method) {
  MethodSetup setup;
  setup.world = MakeWorld(campus, 4, 2, 40);
  setup.context = rl::MakeEnvContext(*setup.world);
  Rng rng(7);
  setup.policy = std::move(
      baselines::MakeUgvPolicy(method, setup.context,
                               baselines::MethodOptions(), rng))
                     .value();
  for (int64_t u = 0; u < 4; ++u) {
    setup.observations.push_back(setup.world->ObserveUgv(u));
  }
  return setup;
}

// Parameter bytes + a rough peak-activation bound (node features across
// layers), reported in MB.
double EstimateMemoryMb(const MethodSetup& setup) {
  double bytes = static_cast<double>(setup.policy->NumParameters()) * 4.0;
  // Activations: stop-feature maps per agent per layer (~4 tensors of
  // [B, 32] floats), times U agents.
  bytes += 4.0 * static_cast<double>(setup.context.num_stops) * 32.0 * 4.0 *
           static_cast<double>(setup.context.num_ugvs);
  return bytes / (1024.0 * 1024.0);
}

void ForwardBenchmark(benchmark::State& state, const std::string& campus,
                      const std::string& method) {
  MethodSetup setup = MakeSetup(campus, method);
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    auto outputs = setup.policy->Forward(setup.observations);
    benchmark::DoNotOptimize(outputs);
  }
  // Per-UGV decision latency, matching the paper's "running time for a
  // UGV from inputting observation to producing actions".
  state.counters["ms_per_ugv"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 4.0,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert,
      benchmark::Counter::kIs1000);
  state.counters["est_mem_mb"] = EstimateMemoryMb(setup);
}

void PrintSummaryTable() {
  TableWriter table({"Method", "KAIST ms/UGV", "UCLA ms/UGV",
                     "Est. Mem (MB, KAIST)"});
  for (const std::string& method : baselines::AllMethods()) {
    if (method == "Random") continue;  // no network to time
    std::vector<double> row;
    for (const std::string& campus : {std::string("KAIST"),
                                      std::string("UCLA")}) {
      MethodSetup setup = MakeSetup(campus, method);
      nn::NoGradGuard no_grad;
      // Warm once, then time a few forwards.
      (void)setup.policy->Forward(setup.observations);
      auto start = std::chrono::steady_clock::now();
      const int kReps = 5;
      for (int i = 0; i < kReps; ++i) {
        auto outputs = setup.policy->Forward(setup.observations);
        benchmark::DoNotOptimize(outputs);
      }
      auto stop = std::chrono::steady_clock::now();
      double ms = std::chrono::duration<double, std::milli>(stop - start)
                      .count() /
                  (kReps * 4.0);
      row.push_back(ms);
    }
    MethodSetup setup = MakeSetup("KAIST", method);
    row.push_back(EstimateMemoryMb(setup));
    table.AddRow(method, row);
  }
  std::printf("\nTable IV — computational complexity of all methods\n");
  table.Print(std::cout);
  WarnIfError(table.WriteCsv(LoadBenchOptions().out_dir + "/table4.csv"),
              "bench_table4: write csv");
}

}  // namespace
}  // namespace garl::bench

int main(int argc, char** argv) {
  // Register one micro-benchmark per (campus, method) pair.
  for (const std::string& campus : {std::string("KAIST")}) {
    for (const std::string& method : garl::baselines::AllMethods()) {
      if (method == "Random") continue;
      benchmark::RegisterBenchmark(
          (campus + "/" + method).c_str(),
          [campus, method](benchmark::State& state) {
            garl::bench::ForwardBenchmark(state, campus, method);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(5);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  garl::bench::PrintSummaryTable();
  return 0;
}
