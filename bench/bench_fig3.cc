// Reproduces Fig. 3: efficiency lambda vs number of UGVs (panels a, b;
// V'=2) and vs number of UAVs per UGV (panels c, d; U=4) for GARL and the
// eight baselines on both campuses.
//
// Paper shape: lambda rises then falls in U (peak near U=15 for KAIST and
// U=20 for UCLA) and in V'; GARL dominates every baseline at every point.

#include "bench_common.h"

int main() {
  garl::bench::BenchOptions options = garl::bench::LoadBenchOptions();
  garl::bench::RunFigureSweep("fig3", "lambda", options);
  return 0;
}
