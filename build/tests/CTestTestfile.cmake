# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/modules_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/distributions_test[1]_include.cmake")
include("/root/repo/build/tests/nn_stress_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/campus_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/world_test[1]_include.cmake")
include("/root/repo/build/tests/render_test[1]_include.cmake")
include("/root/repo/build/tests/gae_test[1]_include.cmake")
include("/root/repo/build/tests/rl_test[1]_include.cmake")
include("/root/repo/build/tests/mc_gcn_test[1]_include.cmake")
include("/root/repo/build/tests/e_comm_test[1]_include.cmake")
include("/root/repo/build/tests/garl_extractor_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/world_edge_test[1]_include.cmake")
