file(REMOVE_RECURSE
  "CMakeFiles/garl_extractor_test.dir/garl_extractor_test.cc.o"
  "CMakeFiles/garl_extractor_test.dir/garl_extractor_test.cc.o.d"
  "garl_extractor_test"
  "garl_extractor_test.pdb"
  "garl_extractor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garl_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
