# Empty dependencies file for garl_extractor_test.
# This may be replaced when dependencies are built.
