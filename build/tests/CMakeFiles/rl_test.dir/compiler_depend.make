# Empty compiler generated dependencies file for rl_test.
# This may be replaced when dependencies are built.
