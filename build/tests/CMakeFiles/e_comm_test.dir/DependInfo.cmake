
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/e_comm_test.cc" "tests/CMakeFiles/e_comm_test.dir/e_comm_test.cc.o" "gcc" "tests/CMakeFiles/e_comm_test.dir/e_comm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/garl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/garl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/garl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/garl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/garl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/garl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
