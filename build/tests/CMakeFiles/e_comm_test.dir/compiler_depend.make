# Empty compiler generated dependencies file for e_comm_test.
# This may be replaced when dependencies are built.
