file(REMOVE_RECURSE
  "CMakeFiles/e_comm_test.dir/e_comm_test.cc.o"
  "CMakeFiles/e_comm_test.dir/e_comm_test.cc.o.d"
  "e_comm_test"
  "e_comm_test.pdb"
  "e_comm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e_comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
