file(REMOVE_RECURSE
  "CMakeFiles/modules_test.dir/modules_test.cc.o"
  "CMakeFiles/modules_test.dir/modules_test.cc.o.d"
  "modules_test"
  "modules_test.pdb"
  "modules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
