file(REMOVE_RECURSE
  "CMakeFiles/gae_test.dir/gae_test.cc.o"
  "CMakeFiles/gae_test.dir/gae_test.cc.o.d"
  "gae_test"
  "gae_test.pdb"
  "gae_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
