# Empty dependencies file for gae_test.
# This may be replaced when dependencies are built.
