file(REMOVE_RECURSE
  "CMakeFiles/world_edge_test.dir/world_edge_test.cc.o"
  "CMakeFiles/world_edge_test.dir/world_edge_test.cc.o.d"
  "world_edge_test"
  "world_edge_test.pdb"
  "world_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
