# Empty dependencies file for world_edge_test.
# This may be replaced when dependencies are built.
