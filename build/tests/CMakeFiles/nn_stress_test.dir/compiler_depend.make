# Empty compiler generated dependencies file for nn_stress_test.
# This may be replaced when dependencies are built.
