file(REMOVE_RECURSE
  "CMakeFiles/nn_stress_test.dir/nn_stress_test.cc.o"
  "CMakeFiles/nn_stress_test.dir/nn_stress_test.cc.o.d"
  "nn_stress_test"
  "nn_stress_test.pdb"
  "nn_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
