file(REMOVE_RECURSE
  "CMakeFiles/mc_gcn_test.dir/mc_gcn_test.cc.o"
  "CMakeFiles/mc_gcn_test.dir/mc_gcn_test.cc.o.d"
  "mc_gcn_test"
  "mc_gcn_test.pdb"
  "mc_gcn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_gcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
