# Empty dependencies file for mc_gcn_test.
# This may be replaced when dependencies are built.
