# Empty compiler generated dependencies file for render_test.
# This may be replaced when dependencies are built.
