# Empty compiler generated dependencies file for campus_test.
# This may be replaced when dependencies are built.
