file(REMOVE_RECURSE
  "CMakeFiles/campus_test.dir/campus_test.cc.o"
  "CMakeFiles/campus_test.dir/campus_test.cc.o.d"
  "campus_test"
  "campus_test.pdb"
  "campus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
