file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_priors.dir/bench_ablation_priors.cc.o"
  "CMakeFiles/bench_ablation_priors.dir/bench_ablation_priors.cc.o.d"
  "bench_ablation_priors"
  "bench_ablation_priors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_priors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
