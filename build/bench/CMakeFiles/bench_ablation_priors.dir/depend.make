# Empty dependencies file for bench_ablation_priors.
# This may be replaced when dependencies are built.
