file(REMOVE_RECURSE
  "CMakeFiles/garl_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/garl_bench_common.dir/bench_common.cc.o.d"
  "libgarl_bench_common.a"
  "libgarl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
