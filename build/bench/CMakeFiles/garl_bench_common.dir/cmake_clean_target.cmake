file(REMOVE_RECURSE
  "libgarl_bench_common.a"
)
