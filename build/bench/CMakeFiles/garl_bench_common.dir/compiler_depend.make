# Empty compiler generated dependencies file for garl_bench_common.
# This may be replaced when dependencies are built.
