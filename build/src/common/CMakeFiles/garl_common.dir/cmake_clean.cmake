file(REMOVE_RECURSE
  "CMakeFiles/garl_common.dir/env_flags.cc.o"
  "CMakeFiles/garl_common.dir/env_flags.cc.o.d"
  "CMakeFiles/garl_common.dir/rng.cc.o"
  "CMakeFiles/garl_common.dir/rng.cc.o.d"
  "CMakeFiles/garl_common.dir/status.cc.o"
  "CMakeFiles/garl_common.dir/status.cc.o.d"
  "CMakeFiles/garl_common.dir/string_util.cc.o"
  "CMakeFiles/garl_common.dir/string_util.cc.o.d"
  "CMakeFiles/garl_common.dir/table_writer.cc.o"
  "CMakeFiles/garl_common.dir/table_writer.cc.o.d"
  "libgarl_common.a"
  "libgarl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
