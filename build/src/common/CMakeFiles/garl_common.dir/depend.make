# Empty dependencies file for garl_common.
# This may be replaced when dependencies are built.
