file(REMOVE_RECURSE
  "libgarl_common.a"
)
