file(REMOVE_RECURSE
  "libgarl_rl.a"
)
