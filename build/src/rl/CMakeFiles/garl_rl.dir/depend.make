# Empty dependencies file for garl_rl.
# This may be replaced when dependencies are built.
