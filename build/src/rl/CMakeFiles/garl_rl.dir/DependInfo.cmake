
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/evaluator.cc" "src/rl/CMakeFiles/garl_rl.dir/evaluator.cc.o" "gcc" "src/rl/CMakeFiles/garl_rl.dir/evaluator.cc.o.d"
  "/root/repo/src/rl/feature_policy.cc" "src/rl/CMakeFiles/garl_rl.dir/feature_policy.cc.o" "gcc" "src/rl/CMakeFiles/garl_rl.dir/feature_policy.cc.o.d"
  "/root/repo/src/rl/gae.cc" "src/rl/CMakeFiles/garl_rl.dir/gae.cc.o" "gcc" "src/rl/CMakeFiles/garl_rl.dir/gae.cc.o.d"
  "/root/repo/src/rl/ippo_trainer.cc" "src/rl/CMakeFiles/garl_rl.dir/ippo_trainer.cc.o" "gcc" "src/rl/CMakeFiles/garl_rl.dir/ippo_trainer.cc.o.d"
  "/root/repo/src/rl/policy.cc" "src/rl/CMakeFiles/garl_rl.dir/policy.cc.o" "gcc" "src/rl/CMakeFiles/garl_rl.dir/policy.cc.o.d"
  "/root/repo/src/rl/rollout.cc" "src/rl/CMakeFiles/garl_rl.dir/rollout.cc.o" "gcc" "src/rl/CMakeFiles/garl_rl.dir/rollout.cc.o.d"
  "/root/repo/src/rl/uav_controller.cc" "src/rl/CMakeFiles/garl_rl.dir/uav_controller.cc.o" "gcc" "src/rl/CMakeFiles/garl_rl.dir/uav_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/garl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/garl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/garl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/garl_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
