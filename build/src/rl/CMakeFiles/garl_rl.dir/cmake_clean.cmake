file(REMOVE_RECURSE
  "CMakeFiles/garl_rl.dir/evaluator.cc.o"
  "CMakeFiles/garl_rl.dir/evaluator.cc.o.d"
  "CMakeFiles/garl_rl.dir/feature_policy.cc.o"
  "CMakeFiles/garl_rl.dir/feature_policy.cc.o.d"
  "CMakeFiles/garl_rl.dir/gae.cc.o"
  "CMakeFiles/garl_rl.dir/gae.cc.o.d"
  "CMakeFiles/garl_rl.dir/ippo_trainer.cc.o"
  "CMakeFiles/garl_rl.dir/ippo_trainer.cc.o.d"
  "CMakeFiles/garl_rl.dir/policy.cc.o"
  "CMakeFiles/garl_rl.dir/policy.cc.o.d"
  "CMakeFiles/garl_rl.dir/rollout.cc.o"
  "CMakeFiles/garl_rl.dir/rollout.cc.o.d"
  "CMakeFiles/garl_rl.dir/uav_controller.cc.o"
  "CMakeFiles/garl_rl.dir/uav_controller.cc.o.d"
  "libgarl_rl.a"
  "libgarl_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garl_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
