file(REMOVE_RECURSE
  "libgarl_env.a"
)
