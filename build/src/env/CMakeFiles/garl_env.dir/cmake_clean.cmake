file(REMOVE_RECURSE
  "CMakeFiles/garl_env.dir/campus.cc.o"
  "CMakeFiles/garl_env.dir/campus.cc.o.d"
  "CMakeFiles/garl_env.dir/campus_factory.cc.o"
  "CMakeFiles/garl_env.dir/campus_factory.cc.o.d"
  "CMakeFiles/garl_env.dir/geometry.cc.o"
  "CMakeFiles/garl_env.dir/geometry.cc.o.d"
  "CMakeFiles/garl_env.dir/metrics.cc.o"
  "CMakeFiles/garl_env.dir/metrics.cc.o.d"
  "CMakeFiles/garl_env.dir/render.cc.o"
  "CMakeFiles/garl_env.dir/render.cc.o.d"
  "CMakeFiles/garl_env.dir/stop_network.cc.o"
  "CMakeFiles/garl_env.dir/stop_network.cc.o.d"
  "CMakeFiles/garl_env.dir/world.cc.o"
  "CMakeFiles/garl_env.dir/world.cc.o.d"
  "libgarl_env.a"
  "libgarl_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garl_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
