# Empty compiler generated dependencies file for garl_env.
# This may be replaced when dependencies are built.
