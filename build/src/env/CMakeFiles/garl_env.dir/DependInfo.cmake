
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/campus.cc" "src/env/CMakeFiles/garl_env.dir/campus.cc.o" "gcc" "src/env/CMakeFiles/garl_env.dir/campus.cc.o.d"
  "/root/repo/src/env/campus_factory.cc" "src/env/CMakeFiles/garl_env.dir/campus_factory.cc.o" "gcc" "src/env/CMakeFiles/garl_env.dir/campus_factory.cc.o.d"
  "/root/repo/src/env/geometry.cc" "src/env/CMakeFiles/garl_env.dir/geometry.cc.o" "gcc" "src/env/CMakeFiles/garl_env.dir/geometry.cc.o.d"
  "/root/repo/src/env/metrics.cc" "src/env/CMakeFiles/garl_env.dir/metrics.cc.o" "gcc" "src/env/CMakeFiles/garl_env.dir/metrics.cc.o.d"
  "/root/repo/src/env/render.cc" "src/env/CMakeFiles/garl_env.dir/render.cc.o" "gcc" "src/env/CMakeFiles/garl_env.dir/render.cc.o.d"
  "/root/repo/src/env/stop_network.cc" "src/env/CMakeFiles/garl_env.dir/stop_network.cc.o" "gcc" "src/env/CMakeFiles/garl_env.dir/stop_network.cc.o.d"
  "/root/repo/src/env/world.cc" "src/env/CMakeFiles/garl_env.dir/world.cc.o" "gcc" "src/env/CMakeFiles/garl_env.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/garl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/garl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/garl_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
