file(REMOVE_RECURSE
  "CMakeFiles/garl_core.dir/e_comm.cc.o"
  "CMakeFiles/garl_core.dir/e_comm.cc.o.d"
  "CMakeFiles/garl_core.dir/garl_extractor.cc.o"
  "CMakeFiles/garl_core.dir/garl_extractor.cc.o.d"
  "CMakeFiles/garl_core.dir/gcn.cc.o"
  "CMakeFiles/garl_core.dir/gcn.cc.o.d"
  "CMakeFiles/garl_core.dir/mc_gcn.cc.o"
  "CMakeFiles/garl_core.dir/mc_gcn.cc.o.d"
  "CMakeFiles/garl_core.dir/uav_policy.cc.o"
  "CMakeFiles/garl_core.dir/uav_policy.cc.o.d"
  "libgarl_core.a"
  "libgarl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
