file(REMOVE_RECURSE
  "libgarl_core.a"
)
