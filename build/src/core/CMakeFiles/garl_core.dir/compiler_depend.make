# Empty compiler generated dependencies file for garl_core.
# This may be replaced when dependencies are built.
