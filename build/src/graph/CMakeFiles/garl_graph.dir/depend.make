# Empty dependencies file for garl_graph.
# This may be replaced when dependencies are built.
