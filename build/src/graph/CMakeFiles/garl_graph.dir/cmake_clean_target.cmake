file(REMOVE_RECURSE
  "libgarl_graph.a"
)
