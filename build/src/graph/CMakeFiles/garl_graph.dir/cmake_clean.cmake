file(REMOVE_RECURSE
  "CMakeFiles/garl_graph.dir/graph.cc.o"
  "CMakeFiles/garl_graph.dir/graph.cc.o.d"
  "CMakeFiles/garl_graph.dir/laplacian.cc.o"
  "CMakeFiles/garl_graph.dir/laplacian.cc.o.d"
  "CMakeFiles/garl_graph.dir/shortest_path.cc.o"
  "CMakeFiles/garl_graph.dir/shortest_path.cc.o.d"
  "libgarl_graph.a"
  "libgarl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
