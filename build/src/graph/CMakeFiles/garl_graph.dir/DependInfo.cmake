
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/garl_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/garl_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/laplacian.cc" "src/graph/CMakeFiles/garl_graph.dir/laplacian.cc.o" "gcc" "src/graph/CMakeFiles/garl_graph.dir/laplacian.cc.o.d"
  "/root/repo/src/graph/shortest_path.cc" "src/graph/CMakeFiles/garl_graph.dir/shortest_path.cc.o" "gcc" "src/graph/CMakeFiles/garl_graph.dir/shortest_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/garl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/garl_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
