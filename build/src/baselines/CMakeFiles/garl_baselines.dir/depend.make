# Empty dependencies file for garl_baselines.
# This may be replaced when dependencies are built.
