file(REMOVE_RECURSE
  "CMakeFiles/garl_baselines.dir/ae_comm.cc.o"
  "CMakeFiles/garl_baselines.dir/ae_comm.cc.o.d"
  "CMakeFiles/garl_baselines.dir/commnet.cc.o"
  "CMakeFiles/garl_baselines.dir/commnet.cc.o.d"
  "CMakeFiles/garl_baselines.dir/common.cc.o"
  "CMakeFiles/garl_baselines.dir/common.cc.o.d"
  "CMakeFiles/garl_baselines.dir/cubic_map.cc.o"
  "CMakeFiles/garl_baselines.dir/cubic_map.cc.o.d"
  "CMakeFiles/garl_baselines.dir/dgn.cc.o"
  "CMakeFiles/garl_baselines.dir/dgn.cc.o.d"
  "CMakeFiles/garl_baselines.dir/gam.cc.o"
  "CMakeFiles/garl_baselines.dir/gam.cc.o.d"
  "CMakeFiles/garl_baselines.dir/gat.cc.o"
  "CMakeFiles/garl_baselines.dir/gat.cc.o.d"
  "CMakeFiles/garl_baselines.dir/ic3net.cc.o"
  "CMakeFiles/garl_baselines.dir/ic3net.cc.o.d"
  "CMakeFiles/garl_baselines.dir/maddpg.cc.o"
  "CMakeFiles/garl_baselines.dir/maddpg.cc.o.d"
  "CMakeFiles/garl_baselines.dir/registry.cc.o"
  "CMakeFiles/garl_baselines.dir/registry.cc.o.d"
  "CMakeFiles/garl_baselines.dir/runner.cc.o"
  "CMakeFiles/garl_baselines.dir/runner.cc.o.d"
  "libgarl_baselines.a"
  "libgarl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
