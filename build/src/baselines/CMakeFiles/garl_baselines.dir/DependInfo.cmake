
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ae_comm.cc" "src/baselines/CMakeFiles/garl_baselines.dir/ae_comm.cc.o" "gcc" "src/baselines/CMakeFiles/garl_baselines.dir/ae_comm.cc.o.d"
  "/root/repo/src/baselines/commnet.cc" "src/baselines/CMakeFiles/garl_baselines.dir/commnet.cc.o" "gcc" "src/baselines/CMakeFiles/garl_baselines.dir/commnet.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/garl_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/garl_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/cubic_map.cc" "src/baselines/CMakeFiles/garl_baselines.dir/cubic_map.cc.o" "gcc" "src/baselines/CMakeFiles/garl_baselines.dir/cubic_map.cc.o.d"
  "/root/repo/src/baselines/dgn.cc" "src/baselines/CMakeFiles/garl_baselines.dir/dgn.cc.o" "gcc" "src/baselines/CMakeFiles/garl_baselines.dir/dgn.cc.o.d"
  "/root/repo/src/baselines/gam.cc" "src/baselines/CMakeFiles/garl_baselines.dir/gam.cc.o" "gcc" "src/baselines/CMakeFiles/garl_baselines.dir/gam.cc.o.d"
  "/root/repo/src/baselines/gat.cc" "src/baselines/CMakeFiles/garl_baselines.dir/gat.cc.o" "gcc" "src/baselines/CMakeFiles/garl_baselines.dir/gat.cc.o.d"
  "/root/repo/src/baselines/ic3net.cc" "src/baselines/CMakeFiles/garl_baselines.dir/ic3net.cc.o" "gcc" "src/baselines/CMakeFiles/garl_baselines.dir/ic3net.cc.o.d"
  "/root/repo/src/baselines/maddpg.cc" "src/baselines/CMakeFiles/garl_baselines.dir/maddpg.cc.o" "gcc" "src/baselines/CMakeFiles/garl_baselines.dir/maddpg.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/baselines/CMakeFiles/garl_baselines.dir/registry.cc.o" "gcc" "src/baselines/CMakeFiles/garl_baselines.dir/registry.cc.o.d"
  "/root/repo/src/baselines/runner.cc" "src/baselines/CMakeFiles/garl_baselines.dir/runner.cc.o" "gcc" "src/baselines/CMakeFiles/garl_baselines.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/garl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/garl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/garl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/garl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/garl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/garl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
