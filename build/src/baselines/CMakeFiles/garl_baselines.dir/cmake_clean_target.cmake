file(REMOVE_RECURSE
  "libgarl_baselines.a"
)
