file(REMOVE_RECURSE
  "libgarl_nn.a"
)
