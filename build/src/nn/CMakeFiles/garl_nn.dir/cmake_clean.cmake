file(REMOVE_RECURSE
  "CMakeFiles/garl_nn.dir/conv2d.cc.o"
  "CMakeFiles/garl_nn.dir/conv2d.cc.o.d"
  "CMakeFiles/garl_nn.dir/distributions.cc.o"
  "CMakeFiles/garl_nn.dir/distributions.cc.o.d"
  "CMakeFiles/garl_nn.dir/grad_check.cc.o"
  "CMakeFiles/garl_nn.dir/grad_check.cc.o.d"
  "CMakeFiles/garl_nn.dir/init.cc.o"
  "CMakeFiles/garl_nn.dir/init.cc.o.d"
  "CMakeFiles/garl_nn.dir/linear.cc.o"
  "CMakeFiles/garl_nn.dir/linear.cc.o.d"
  "CMakeFiles/garl_nn.dir/lstm_cell.cc.o"
  "CMakeFiles/garl_nn.dir/lstm_cell.cc.o.d"
  "CMakeFiles/garl_nn.dir/mlp.cc.o"
  "CMakeFiles/garl_nn.dir/mlp.cc.o.d"
  "CMakeFiles/garl_nn.dir/ops.cc.o"
  "CMakeFiles/garl_nn.dir/ops.cc.o.d"
  "CMakeFiles/garl_nn.dir/optimizer.cc.o"
  "CMakeFiles/garl_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/garl_nn.dir/serialization.cc.o"
  "CMakeFiles/garl_nn.dir/serialization.cc.o.d"
  "CMakeFiles/garl_nn.dir/tensor.cc.o"
  "CMakeFiles/garl_nn.dir/tensor.cc.o.d"
  "libgarl_nn.a"
  "libgarl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
