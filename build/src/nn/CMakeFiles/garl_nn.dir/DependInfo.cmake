
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv2d.cc" "src/nn/CMakeFiles/garl_nn.dir/conv2d.cc.o" "gcc" "src/nn/CMakeFiles/garl_nn.dir/conv2d.cc.o.d"
  "/root/repo/src/nn/distributions.cc" "src/nn/CMakeFiles/garl_nn.dir/distributions.cc.o" "gcc" "src/nn/CMakeFiles/garl_nn.dir/distributions.cc.o.d"
  "/root/repo/src/nn/grad_check.cc" "src/nn/CMakeFiles/garl_nn.dir/grad_check.cc.o" "gcc" "src/nn/CMakeFiles/garl_nn.dir/grad_check.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/garl_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/garl_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/garl_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/garl_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/lstm_cell.cc" "src/nn/CMakeFiles/garl_nn.dir/lstm_cell.cc.o" "gcc" "src/nn/CMakeFiles/garl_nn.dir/lstm_cell.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/garl_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/garl_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/nn/CMakeFiles/garl_nn.dir/ops.cc.o" "gcc" "src/nn/CMakeFiles/garl_nn.dir/ops.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/garl_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/garl_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/nn/CMakeFiles/garl_nn.dir/serialization.cc.o" "gcc" "src/nn/CMakeFiles/garl_nn.dir/serialization.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/garl_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/garl_nn.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/garl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
