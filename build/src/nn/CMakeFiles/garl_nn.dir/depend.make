# Empty dependencies file for garl_nn.
# This may be replaced when dependencies are built.
