# Empty dependencies file for custom_campus.
# This may be replaced when dependencies are built.
