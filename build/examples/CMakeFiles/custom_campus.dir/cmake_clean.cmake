file(REMOVE_RECURSE
  "CMakeFiles/custom_campus.dir/custom_campus.cpp.o"
  "CMakeFiles/custom_campus.dir/custom_campus.cpp.o.d"
  "custom_campus"
  "custom_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
