file(REMOVE_RECURSE
  "CMakeFiles/kaist_surveillance.dir/kaist_surveillance.cpp.o"
  "CMakeFiles/kaist_surveillance.dir/kaist_surveillance.cpp.o.d"
  "kaist_surveillance"
  "kaist_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kaist_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
