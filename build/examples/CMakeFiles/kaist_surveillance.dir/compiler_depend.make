# Empty compiler generated dependencies file for kaist_surveillance.
# This may be replaced when dependencies are built.
