file(REMOVE_RECURSE
  "CMakeFiles/ucla_disaster_response.dir/ucla_disaster_response.cpp.o"
  "CMakeFiles/ucla_disaster_response.dir/ucla_disaster_response.cpp.o.d"
  "ucla_disaster_response"
  "ucla_disaster_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucla_disaster_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
