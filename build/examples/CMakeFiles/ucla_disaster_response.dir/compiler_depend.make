# Empty compiler generated dependencies file for ucla_disaster_response.
# This may be replaced when dependencies are built.
