#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace garl {
namespace {

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&ran_on] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  // Chunks are disjoint, so plain ints need no synchronization.
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, 1000, 1, [&hits](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForHandlesOffsetAndEmptyRanges) {
  ThreadPool pool(3);
  std::vector<int> hits(20, 0);
  pool.ParallelFor(5, 15, 2, [&hits](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)], (i >= 5 && i < 15) ? 1 : 0) << i;
  }
  bool called = false;
  pool.ParallelFor(7, 7, 1, [&called](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(4);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRethrowsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100, 1,
                                [](int64_t, int64_t) {
                                  throw std::runtime_error("chunk failed");
                                }),
               std::runtime_error);
  // The pool survives the exception and keeps serving work.
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 64, 1, [&total](int64_t begin, int64_t end) {
    total += end - begin;
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ReentrantParallelForCompletes) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  // Nested ParallelFor from pool workers must run inline (no deadlock).
  pool.ParallelFor(0, 4, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      pool.ParallelFor(0, 10, 1, [&total](int64_t nb, int64_t ne) {
        total += ne - nb;
      });
    }
  });
  EXPECT_EQ(total.load(), 40);
}

TEST(ThreadPoolTest, InWorkerFlag) {
  ThreadPool pool(2);
  EXPECT_FALSE(ThreadPool::InWorker());
  bool in_worker = false;
  pool.Submit([&in_worker] { in_worker = ThreadPool::InWorker(); }).get();
  EXPECT_TRUE(in_worker);
  EXPECT_FALSE(ThreadPool::InWorker());
}

TEST(ThreadPoolTest, InlineScopeForcesInlineExecution) {
  ThreadPool pool(4);
  int invocations = 0;
  std::thread::id caller = std::this_thread::get_id();
  {
    ThreadPool::InlineScope inline_scope;
    pool.ParallelFor(0, 1000, 1, [&](int64_t, int64_t) {
      ++invocations;
      EXPECT_EQ(std::this_thread::get_id(), caller);
    });
  }
  // Inline execution means one body call covering the whole range.
  EXPECT_EQ(invocations, 1);
}

TEST(ThreadPoolTest, SetGlobalThreadsResizesGlobalPool) {
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
}

}  // namespace
}  // namespace garl
