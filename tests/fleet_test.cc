// End-to-end coverage for the self-healing fleet supervisor
// (tools/garl_fleet) and the signal-safe trainer shutdown underneath it:
//
//  * a child SIGKILLed mid-run is restarted from its last CRC-valid
//    checkpoint and the stitched `det` log bytes match an uninterrupted run;
//  * a SIGSTOPped child trips the stalled-heartbeat watchdog, is SIGKILLed
//    and restarted, and the run still completes;
//  * a child that always fails exhausts its restart budget and surfaces a
//    clean per-run Status (the rest of the fleet keeps going, nothing hangs);
//  * SIGTERM delivered to a training process makes Train() checkpoint and
//    return CANCELLED, and resuming from that checkpoint reproduces the
//    uninterrupted det stream byte-for-byte;
//  * RotatingAppendFile rolls over exactly at record boundaries with the
//    deterministic segment naming the stitch readers rely on.
//
// The supervised-run tests exec the real garl_fleet binary (path injected as
// GARL_FLEET_BINARY) so the full spawn/heartbeat/resume path is exercised
// across process boundaries.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/fs_util.h"
#include "common/proc.h"
#include "common/rng.h"
#include "env/world.h"
#include "nn/linear.h"
#include "nn/ops.h"
#include "obs/run_log.h"
#include "rl/checkpoint.h"
#include "rl/feature_policy.h"
#include "rl/ippo_trainer.h"
#include "tools/garl_fleet/fleet.h"

namespace garl::fleet {
namespace {

std::string TestRoot(const std::string& name) {
  std::string root =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  RemoveAllBestEffort(root);  // stale state from a previous test run
  return root;
}

bool FileContains(const std::string& path, const std::string& needle) {
  StatusOr<std::string> contents = ReadFileToString(path);
  return contents.ok() &&
         contents.value().find(needle) != std::string::npos;
}

// The `det` object's raw bytes from every record of a (possibly rotated)
// run log, stitched in segment order.
std::vector<std::string> DetPayloadsForRun(const std::string& run_dir) {
  StatusOr<std::vector<std::string>> files =
      obs::CollectRunLogInputs({run_dir});
  EXPECT_TRUE(files.ok()) << files.status().ToString();
  std::vector<std::string> payloads;
  if (!files.ok()) return payloads;
  for (const std::string& file : files.value()) {
    StatusOr<std::string> contents = ReadFileToString(file);
    EXPECT_TRUE(contents.ok()) << contents.status().ToString();
    if (!contents.ok()) continue;
    size_t start = 0;
    const std::string& text = contents.value();
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      StatusOr<std::string> det =
          obs::DeterministicPayload(text.substr(start, end - start));
      EXPECT_TRUE(det.ok()) << det.status().ToString();
      payloads.push_back(det.ok() ? det.value() : "");
      start = end + 1;
    }
  }
  return payloads;
}

SupervisorConfig FastConfig(const std::string& root) {
  SupervisorConfig config;
  config.child_binary = GARL_FLEET_BINARY;
  config.root_dir = root;
  config.initial_backoff_ms = 1;
  config.max_backoff_ms = 5;
  config.poll_interval_ms = 2;
  config.sleep_fn = [](int64_t) { proc::SleepMs(2); };
  return config;
}

RunSpec BenchmarkSpec(const std::string& name, int64_t iterations,
                      int64_t segment_bytes) {
  RunSpec spec;
  spec.name = name;
  spec.seed = 5;
  spec.iterations = iterations;
  spec.episodes_per_iteration = 2;
  spec.run_log_max_segment_bytes = segment_bytes;
  return spec;
}

TEST(FleetTest, SigkillMidRunResumesByteIdentical) {
  // Reference: the same run spec supervised with no interference.
  const std::string ref_root = TestRoot("fleet_ref");
  StatusOr<std::vector<RunResult>> ref = SuperviseFleet(
      FastConfig(ref_root), {BenchmarkSpec("run", 8, 700)});
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  ASSERT_EQ(ref.value().size(), 1u);
  ASSERT_TRUE(ref.value()[0].status.ok())
      << ref.value()[0].status.ToString();

  // Interrupted: SIGKILL the child once it has completed iteration 1 (of 8),
  // from the supervisor's own poll loop via the sleep seam.
  const std::string killed_root = TestRoot("fleet_killed");
  SupervisorConfig config = FastConfig(killed_root);
  const std::string heartbeat =
      HeartbeatPath(RunDir(killed_root, "run"));
  std::atomic<int64_t> child_pid{-1};
  std::atomic<bool> killed{false};
  config.on_spawn = [&](const std::string&, int64_t pid, int64_t) {
    child_pid.store(pid);
  };
  config.sleep_fn = [&](int64_t) {
    proc::SleepMs(2);
    if (!killed.load() && child_pid.load() > 0 &&
        FileContains(heartbeat, "hb 1\n")) {
      killed.store(true);
      Status sent = proc::SendSignal(child_pid.load(), SIGKILL);
      EXPECT_TRUE(sent.ok()) << sent.ToString();
    }
  };
  StatusOr<std::vector<RunResult>> interrupted =
      SuperviseFleet(config, {BenchmarkSpec("run", 8, 700)});
  ASSERT_TRUE(interrupted.ok()) << interrupted.status().ToString();
  const RunResult& result = interrupted.value()[0];
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(killed.load()) << "child finished before the test could kill "
                                "it; raise the iteration count";
  EXPECT_GE(result.restarts, 1);

  // The supervised, killed-and-resumed run must emit the exact det bytes of
  // the uninterrupted one, across rotated segment boundaries.
  std::vector<std::string> expected =
      DetPayloadsForRun(RunDir(ref_root, "run"));
  std::vector<std::string> actual =
      DetPayloadsForRun(RunDir(killed_root, "run"));
  ASSERT_EQ(expected.size(), 8u);
  EXPECT_EQ(actual, expected);

  // And the rotated segments round-trip through the stitch readers with the
  // schema + continuity contract intact.
  StatusOr<std::vector<std::string>> files =
      obs::CollectRunLogInputs({RunDir(killed_root, "run")});
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  EXPECT_GT(files.value().size(), 1u) << "expected rotation to kick in";
  Status valid = obs::ValidateRunLogFiles(files.value());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  StatusOr<obs::RunLogSummary> summary =
      obs::SummarizeRunLogFiles(files.value());
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().records, 8);
  EXPECT_EQ(summary.value().last.episode_counter, 16);
}

TEST(FleetTest, StalledHeartbeatIsKilledAndRestarted) {
  const std::string root = TestRoot("fleet_hang");
  SupervisorConfig config = FastConfig(root);
  // Generous deadline: the SIGSTOP'd child never beats again so any value
  // catches it, but restarted (healthy) children must beat within this
  // window even when sanitizer-instrumented and sharing the box with a
  // parallel ctest run — 400 ms exhausted the restart budget under ASan -j4.
  config.heartbeat_deadline_ms = 2000;
  const std::string heartbeat = HeartbeatPath(RunDir(root, "run"));
  std::atomic<int64_t> child_pid{-1};
  std::atomic<bool> stopped{false};
  config.on_spawn = [&](const std::string&, int64_t pid, int64_t) {
    child_pid.store(pid);
  };
  // Freeze the first child right after its proof-of-life beat: the
  // heartbeat file stops growing, the watchdog must SIGKILL and restart.
  config.sleep_fn = [&](int64_t) {
    proc::SleepMs(2);
    if (!stopped.load() && child_pid.load() > 0 &&
        FileContains(heartbeat, "hb start\n")) {
      stopped.store(true);
      Status sent = proc::SendSignal(child_pid.load(), SIGSTOP);
      EXPECT_TRUE(sent.ok()) << sent.ToString();
    }
  };
  StatusOr<std::vector<RunResult>> results =
      SuperviseFleet(config, {BenchmarkSpec("run", 3, 0)});
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  const RunResult& result = results.value()[0];
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GE(result.hang_kills, 1);
  EXPECT_GE(result.restarts, 1);
}

TEST(FleetTest, RestartBudgetExhaustsCleanlyAndFleetContinues) {
  const std::string root = TestRoot("fleet_budget");
  SupervisorConfig config = FastConfig(root);
  config.max_restarts = 2;
  RunSpec healthy = BenchmarkSpec("healthy", 2, 0);
  RunSpec doomed = BenchmarkSpec("doomed", 2, 0);
  doomed.extra_child_args = {"--fail-with", "1"};
  StatusOr<std::vector<RunResult>> results =
      SuperviseFleet(config, {healthy, doomed});
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results.value().size(), 2u);
  const RunResult& ok_run = results.value()[0];
  const RunResult& failed_run = results.value()[1];
  EXPECT_TRUE(ok_run.status.ok()) << ok_run.status.ToString();
  ASSERT_FALSE(failed_run.status.ok());
  EXPECT_NE(failed_run.status.message().find("restart budget"),
            std::string::npos)
      << failed_run.status.ToString();
  EXPECT_EQ(failed_run.restarts, 2);

  Status aggregate = AggregateStatus(results.value());
  ASSERT_FALSE(aggregate.ok());
  EXPECT_NE(aggregate.message().find("doomed"), std::string::npos)
      << aggregate.ToString();

  // The results merge handles mixed outcomes: numbers for the healthy run,
  // placeholders for the failed one.
  ASSERT_TRUE(WriteResultsTable(config, results.value()).ok());
  const std::string table = root + "/RESULTS.md";
  EXPECT_TRUE(FileContains(table, "healthy"));
  EXPECT_TRUE(FileContains(table, "doomed"));
  EXPECT_TRUE(FileContains(table, "INTERNAL"));
}

// ---- In-process trainer shutdown + resume -----------------------------------

env::CampusSpec TinyCampus() {
  env::CampusSpec campus;
  campus.name = "fleet_test_tiny";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  campus.sensors.push_back({{260, 190}, 1200.0});
  campus.sensors.push_back({{200, 320}, 900.0});
  return campus;
}

env::WorldParams TinyParams() {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 20;
  params.release_slots = 2;
  return params;
}

class PoolExtractor : public rl::UgvFeatureExtractor {
 public:
  explicit PoolExtractor(Rng& rng)
      : proj_(std::make_unique<nn::Linear>(5, 16, rng)) {}

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override {
    std::vector<nn::Tensor> features;
    for (const auto& obs : observations) {
      nn::Tensor pooled = nn::MulScalar(
          nn::SumDim(obs.stop_features, 0),
          1.0f / static_cast<float>(obs.stop_features.size(0)));
      nn::Tensor self =
          nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
      features.push_back(
          nn::Tanh(proj_->Forward(nn::Concat({pooled, self}, 0))));
    }
    return features;
  }

  int64_t feature_dim() const override { return 16; }
  std::string name() const override { return "fleet_test_pool"; }
  bool ThreadSafeExtract() const override { return true; }
  std::vector<nn::Tensor> Parameters() const override {
    return proj_->Parameters();
  }

 private:
  std::unique_ptr<nn::Linear> proj_;
};

rl::TrainConfig TinyTrainConfig(const std::string& dir, int64_t iterations,
                                int64_t start_iteration) {
  rl::TrainConfig config;
  config.iterations = iterations;
  config.episodes_per_iteration = 1;
  config.seed = 11;
  config.checkpoint_dir = dir + "/checkpoints";
  config.checkpoint_interval = 1;
  config.run_log_path = dir + "/run_log.jsonl";
  config.start_iteration = start_iteration;
  return config;
}

// Runs the tiny scenario for [start_iteration, iterations); `on_iteration`
// (optional) observes each completed iteration.
StatusOr<std::vector<rl::IterationStats>> TrainTiny(
    const std::string& dir, int64_t iterations, int64_t start_iteration,
    std::function<void(int64_t)> on_iteration = nullptr) {
  env::World world(TinyCampus(), TinyParams());
  Rng rng(7);
  rl::EnvContext context = rl::MakeEnvContext(world);
  rl::FeatureUgvPolicy policy(std::make_unique<PoolExtractor>(rng), context,
                              rl::FeaturePolicyOptions{}, rng);
  rl::TrainConfig config = TinyTrainConfig(dir, iterations, start_iteration);
  config.iteration_callback = std::move(on_iteration);
  rl::IppoTrainer trainer(&world, &policy, nullptr, config);
  if (start_iteration > 0) {
    Status restored = trainer.RestoreCheckpoint(config.checkpoint_dir);
    if (!restored.ok()) return restored;
  }
  return trainer.Train();
}

TEST(FleetTest, TrainerCheckpointsAndCancelsOnShutdownSignal) {
  proc::ResetShutdownRequestForTest();
  ASSERT_TRUE(proc::InstallShutdownSignalHandlers().ok());

  // Uninterrupted reference run.
  const std::string ref_dir = TestRoot("fleet_cancel_ref");
  ASSERT_TRUE(EnsureDirectory(ref_dir).ok());
  StatusOr<std::vector<rl::IterationStats>> ref = TrainTiny(ref_dir, 4, 0);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  // Interrupted run: the process signals ITSELF with SIGTERM after
  // iteration 1, exactly like a supervisor-initiated graceful shutdown.
  const std::string dir = TestRoot("fleet_cancel");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  StatusOr<std::vector<rl::IterationStats>> interrupted =
      TrainTiny(dir, 4, 0, [](int64_t iteration) {
        if (iteration == 1) {
          Status sent = proc::SendSignal(
              static_cast<int64_t>(::getpid()), SIGTERM);
          EXPECT_TRUE(sent.ok()) << sent.ToString();
        }
      });
  ASSERT_FALSE(interrupted.ok());
  EXPECT_TRUE(IsCancelled(interrupted.status()))
      << interrupted.status().ToString();

  // The cancel path wrote a checkpoint covering both completed iterations.
  StatusOr<rl::CheckpointInfo> latest =
      rl::LatestCheckpoint(dir + "/checkpoints");
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().episode, 2);

  // Resume from it; the stitched det stream matches the uninterrupted run.
  proc::ResetShutdownRequestForTest();
  StatusOr<std::vector<rl::IterationStats>> resumed = TrainTiny(dir, 4, 2);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(DetPayloadsForRun(dir), DetPayloadsForRun(ref_dir));

  proc::ResetShutdownRequestForTest();
}

// ---- Rotation primitives ----------------------------------------------------

TEST(FleetTest, RotatingAppendFileRollsAtRecordBoundaries) {
  const std::string root = TestRoot("fleet_rotate");
  ASSERT_TRUE(EnsureDirectory(root).ok());
  const std::string base = root + "/log.jsonl";
  StatusOr<RotatingAppendFile> file =
      RotatingAppendFile::Open(base, /*max_segment_bytes=*/10);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file.value().current_path(),
            RotatingAppendFile::SegmentPath(base, 10, 0));
  ASSERT_TRUE(file.value().Append("aaaa\n").ok());
  ASSERT_TRUE(file.value().Append("bbbb\n").ok());  // exactly at the cap
  ASSERT_TRUE(file.value().Append("cccc\n").ok());  // must open segment 1
  EXPECT_EQ(file.value().segment_index(), 1);
  EXPECT_EQ(file.value().current_path(), base + ".000001");

  StatusOr<std::string> seg0 = ReadFileToString(base + ".000000");
  ASSERT_TRUE(seg0.ok());
  EXPECT_EQ(seg0.value(), "aaaa\nbbbb\n");
  StatusOr<std::string> seg1 = ReadFileToString(base + ".000001");
  ASSERT_TRUE(seg1.ok());
  EXPECT_EQ(seg1.value(), "cccc\n");

  // Rotation off: everything lands in the base path itself.
  EXPECT_EQ(RotatingAppendFile::SegmentPath(base, 0, 3), base);
  StatusOr<RotatingAppendFile> plain = RotatingAppendFile::Open(base, 0);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(plain.value().Append("dddd\n").ok());
  StatusOr<std::string> contents = ReadFileToString(base);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "dddd\n");
}

}  // namespace
}  // namespace garl::fleet
