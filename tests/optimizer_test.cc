#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/ops.h"
#include "nn/optimizer.h"

namespace garl::nn {
namespace {

// Minimizes f(x) = sum((x - target)^2) and returns the final x.
template <typename Opt, typename... Args>
std::vector<float> Minimize(std::vector<float> start, float target,
                            int steps, Args... args) {
  const int64_t n = static_cast<int64_t>(start.size());
  Tensor x = Tensor::FromVector({n}, std::move(start), /*requires_grad=*/true);
  Opt opt({x}, args...);
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    Tensor loss = Sum(Square(AddScalar(x, -target)));
    loss.Backward();
    opt.Step();
  }
  return x.data();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  auto x = Minimize<Sgd>({10.0f, -4.0f}, 3.0f, 200, 0.1f);
  EXPECT_NEAR(x[0], 3.0f, 1e-3f);
  EXPECT_NEAR(x[1], 3.0f, 1e-3f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  auto x = Minimize<Adam>({10.0f, -4.0f}, 3.0f, 500, 0.1f);
  EXPECT_NEAR(x[0], 3.0f, 1e-2f);
  EXPECT_NEAR(x[1], 3.0f, 1e-2f);
}

TEST(AdamTest, HandlesScaleImbalance) {
  // Adam should make progress on both coordinates despite gradient scale
  // differences (classic failure mode for plain SGD with one LR).
  Tensor x = Tensor::FromVector({2}, {1.0f, 1.0f}, /*requires_grad=*/true);
  Adam opt({x}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    opt.ZeroGrad();
    // f = 1000*x0^2 + 0.001*x1^2
    Tensor x0 = Gather1d(x, 0);
    Tensor x1 = Gather1d(x, 1);
    Tensor loss = Add(MulScalar(Square(x0), 1000.0f),
                      MulScalar(Square(x1), 0.001f));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.data()[0], 0.0f, 1e-2f);
  EXPECT_LT(std::fabs(x.data()[1]), 1.0f);
}

TEST(OptimizerTest, ZeroGradClears) {
  Tensor x = Tensor::FromVector({2}, {1, 2}, /*requires_grad=*/true);
  Sgd opt({x}, 0.1f);
  Sum(Square(x)).Backward();
  EXPECT_NE(x.grad()[0], 0.0f);
  opt.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
  EXPECT_EQ(x.grad()[1], 0.0f);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Tensor x = Tensor::FromVector({2}, {0, 0}, /*requires_grad=*/true);
  Sgd opt({x}, 0.1f);
  x.impl()->grad = {3.0f, 4.0f};  // norm 5
  float pre = opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(pre, 5.0f, 1e-5f);
  float post = std::hypot(x.grad()[0], x.grad()[1]);
  EXPECT_NEAR(post, 1.0f, 1e-4f);
}

TEST(OptimizerTest, ClipGradNormNoopWhenSmall) {
  Tensor x = Tensor::FromVector({2}, {0, 0}, /*requires_grad=*/true);
  Sgd opt({x}, 0.1f);
  x.impl()->grad = {0.3f, 0.4f};
  opt.ClipGradNorm(10.0f);
  EXPECT_FLOAT_EQ(x.grad()[0], 0.3f);
  EXPECT_FLOAT_EQ(x.grad()[1], 0.4f);
}

TEST(OptimizerTest, TrainsLinearRegression) {
  // y = 2a - b, fit from samples; sanity check for the whole training loop.
  Rng rng(3);
  Linear model(2, 1, rng);
  Adam opt(model.Parameters(), 0.05f);
  Rng data_rng(17);
  for (int step = 0; step < 300; ++step) {
    float a = data_rng.UniformF(-1, 1), b = data_rng.UniformF(-1, 1);
    Tensor x = Tensor::FromVector({2}, {a, b});
    Tensor target = Tensor::FromVector({1}, {2 * a - b});
    opt.ZeroGrad();
    MseLoss(model.Forward(x), target).Backward();
    opt.Step();
  }
  EXPECT_NEAR(model.weight().at({0, 0}), 2.0f, 0.1f);
  EXPECT_NEAR(model.weight().at({0, 1}), -1.0f, 0.1f);
  EXPECT_NEAR(model.bias().at({0}), 0.0f, 0.1f);
}

}  // namespace
}  // namespace garl::nn
