// Tests for the arena/slab tensor allocator (src/nn/arena.*): pool
// recycling, counters, cache cap/eviction, scratch-arena alignment and
// mark/restore, per-thread isolation, and — the property the whole subsystem
// exists for — zero steady-state heap allocations per training-shaped
// iteration after warmup.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/arena.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace garl::nn::arena {
namespace {

TEST(ArenaPoolTest, AcquireZeroedIsZeroFilled) {
  std::vector<float> buf = AcquireZeroed(37);
  ASSERT_EQ(buf.size(), 37u);
  for (float v : buf) EXPECT_EQ(v, 0.0f);
  // Dirty it and recycle: a second zeroed acquire of the same size must be
  // zeroed again even though it reuses the recycled storage.
  for (auto& v : buf) v = 3.5f;
  Release(std::move(buf));
  std::vector<float> again = AcquireZeroed(37);
  ASSERT_EQ(again.size(), 37u);
  for (float v : again) EXPECT_EQ(v, 0.0f);
  Release(std::move(again));
}

TEST(ArenaPoolTest, ReleaseThenAcquireReusesStorage) {
  std::vector<float> buf = AcquireUninit(256);
  const float* ptr = buf.data();
  Release(std::move(buf));
  ResetStatsForTest();
  std::vector<float> again = AcquireUninit(256);
  EXPECT_EQ(again.data(), ptr);  // same storage came back
  ArenaStats stats = GlobalStats();
  EXPECT_EQ(stats.heap_allocs, 0);
  EXPECT_GE(stats.reuses, 1);
  Release(std::move(again));
}

TEST(ArenaPoolTest, FreeListsAreKeyedByExactSize) {
  std::vector<float> buf = AcquireUninit(100);
  Release(std::move(buf));
  ResetStatsForTest();
  // A different size must not be served from the 100-element list.
  std::vector<float> other = AcquireUninit(101);
  EXPECT_EQ(other.size(), 101u);
  EXPECT_GE(GlobalStats().heap_allocs, 1);
  Release(std::move(other));
}

TEST(ArenaPoolTest, CacheCapEvictsInsteadOfCaching) {
  FlushThreadCache();
  SetMaxCachedBytesForTest(0);  // nothing may be cached
  ResetStatsForTest();
  std::vector<float> buf = AcquireUninit(1024);
  Release(std::move(buf));
  ArenaStats stats = GlobalStats();
  EXPECT_GE(stats.evictions, 1);
  // With the cache disabled the next acquire must hit the heap again.
  std::vector<float> again = AcquireUninit(1024);
  EXPECT_GE(GlobalStats().heap_allocs, 2);
  Release(std::move(again));
  SetMaxCachedBytesForTest(-1);  // restore env default for later tests
}

TEST(ArenaPoolTest, PerThreadFreeListsAreIsolated) {
  // A buffer released on a worker thread lands in that thread's free list;
  // until the thread flushes, the main thread cannot see the storage, and
  // after FlushThreadCache the capacity migrates through the orphan list.
  const float* worker_ptr = nullptr;
  std::thread t([&] {
    std::vector<float> buf = AcquireUninit(4096);
    worker_ptr = buf.data();
    Release(std::move(buf));
    // Not flushed yet: the main thread's acquire below must miss.
  });
  t.join();
  // The pool's worker-exit path (or explicit flush) moves the dead thread's
  // cache to the orphanage, so this acquire may reuse worker storage. Either
  // way the buffer is usable and the counters stay coherent.
  ResetStatsForTest();
  std::vector<float> buf = AcquireUninit(4096);
  ASSERT_EQ(buf.size(), 4096u);
  ArenaStats stats = GlobalStats();
  EXPECT_EQ(stats.heap_allocs + stats.reuses, 1);
  Release(std::move(buf));
}

TEST(ArenaScratchTest, AllocationsAre64ByteAligned) {
  Arena arena(1 << 10);
  for (int64_t count : {1, 3, 17, 64, 1000}) {
    float* p = arena.AllocateFloats(count);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u) << count;
    p[0] = 1.0f;          // touch both ends: the span is really writable
    p[count - 1] = 2.0f;
  }
}

TEST(ArenaScratchTest, ResetReusesTheSameSlab) {
  Arena arena(1 << 12);
  float* first = arena.AllocateFloats(128);
  arena.Reset();
  float* second = arena.AllocateFloats(128);
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.slab_count(), 1);
}

TEST(ArenaScratchTest, GrowsWhenSlabExhausted) {
  Arena arena(64);  // tiny first slab
  float* a = arena.AllocateFloats(8);
  float* b = arena.AllocateFloats(1 << 12);  // forces a new, larger slab
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GE(arena.slab_count(), 2);
  EXPECT_GE(arena.capacity_bytes(),
            static_cast<int64_t>((8 + (1 << 12)) * sizeof(float)));
  // After Reset the grown capacity is retained for reuse.
  int64_t cap = arena.capacity_bytes();
  arena.Reset();
  EXPECT_EQ(arena.capacity_bytes(), cap);
  EXPECT_EQ(arena.used_bytes(), 0);
}

TEST(ArenaScratchTest, MarkRestoreComposesLikeAStack) {
  Arena arena(1 << 12);
  arena.AllocateFloats(16);
  Arena::Mark outer = arena.SaveMark();
  float* inner_ptr = arena.AllocateFloats(32);
  arena.RestoreMark(outer);
  // Allocating again after restore hands back the same region.
  EXPECT_EQ(arena.AllocateFloats(32), inner_ptr);
}

TEST(ArenaScratchTest, ScratchScopeRestoresThreadArena) {
  Arena& arena = ThreadScratch();
  arena.Reset();
  int64_t before = arena.used_bytes();
  {
    ScratchScope scope;
    arena.AllocateFloats(512);
    EXPECT_GT(arena.used_bytes(), before);
  }
  EXPECT_EQ(arena.used_bytes(), before);
}

TEST(ArenaScratchTest, ThreadScratchIsPerThread) {
  Arena* main_arena = &ThreadScratch();
  Arena* worker_arena = nullptr;
  std::thread t([&] { worker_arena = &ThreadScratch(); });
  t.join();
  ASSERT_NE(worker_arena, nullptr);
  EXPECT_NE(main_arena, worker_arena);
}

// The headline property: a training-shaped loop — forward, backward, and the
// shape ops the trainer uses (Transpose/IndexRows/Concat) — performs zero
// heap allocations per iteration once the pool is warm. Runs single-threaded
// so no other thread's first-touch misses pollute the counter.
TEST(ArenaSteadyStateTest, TrainingShapedLoopIsAllocationFreeAfterWarmup) {
  auto iteration = [] {
    Tensor a = Tensor::Full({33, 17}, 0.5f, /*requires_grad=*/true);
    Tensor b = Tensor::Full({17, 29}, -0.25f, /*requires_grad=*/true);
    Tensor h = Relu(MatMul(a, b));
    Tensor ht = Transpose(h);
    Tensor picked = IndexRows(h, {0, 5, 5, 31});
    Tensor cat = Concat({picked, Rows(h, 0, 2)}, 0);
    Tensor loss = Add(Sum(Mul(cat, cat)), Sum(Mul(ht, ht)));
    loss.Backward();
  };
  for (int i = 0; i < 3; ++i) iteration();  // warmup populates free lists
  ResetStatsForTest();
  constexpr int kIters = 10;
  for (int i = 0; i < kIters; ++i) iteration();
  ArenaStats stats = GlobalStats();
  EXPECT_EQ(stats.heap_allocs, 0)
      << "steady-state iterations must be served entirely from the pool ("
      << stats.heap_allocs << " heap allocations over " << kIters
      << " iterations)";
  EXPECT_GT(stats.reuses, 0);
  // The autograd node headers (allocate_shared'd TensorImpl blocks) must be
  // pooled too, not just the value/grad buffers.
  EXPECT_EQ(stats.node_heap_allocs, 0)
      << "steady-state iterations must recycle TensorImpl node blocks ("
      << stats.node_heap_allocs << " node heap allocations over " << kIters
      << " iterations)";
  EXPECT_GT(stats.node_reuses, 0);
}

TEST(ArenaNodePoolTest, AcquireNodeRecyclesBlocksBySizeClass) {
  void* first = AcquireNode(200);
  ReleaseNode(first, 200);
  ResetStatsForTest();
  // Same size class (200 and 220 both round up to 256): must reuse.
  void* second = AcquireNode(220);
  EXPECT_EQ(second, first);
  ArenaStats stats = GlobalStats();
  EXPECT_EQ(stats.node_heap_allocs, 0);
  EXPECT_GE(stats.node_reuses, 1);
  // A different size class misses the list and hits the heap.
  void* big = AcquireNode(4096);
  EXPECT_GE(GlobalStats().node_heap_allocs, 1);
  ReleaseNode(second, 220);
  ReleaseNode(big, 4096);
}

TEST(ArenaNodePoolTest, TensorConstructionIsNodeAllocationFreeWhenWarm) {
  // Warm the node free list with a few graph builds, then assert fresh
  // tensors stop touching the heap for their node headers.
  for (int i = 0; i < 3; ++i) {
    Tensor t = Tensor::Full({4, 4}, 1.0f, /*requires_grad=*/true);
    Tensor loss = Sum(Mul(t, t));
    loss.Backward();
  }
  ResetStatsForTest();
  {
    Tensor t = Tensor::Full({4, 4}, 1.0f, /*requires_grad=*/true);
    Tensor loss = Sum(Mul(t, t));
    loss.Backward();
  }
  ArenaStats stats = GlobalStats();
  EXPECT_EQ(stats.node_heap_allocs, 0);
  EXPECT_GT(stats.node_reuses, 0);
}

TEST(ArenaStatsTest, CountersTrackAcquireReleaseCycle) {
  FlushThreadCache();
  ResetStatsForTest();
  std::vector<float> buf = AcquireUninit(512);
  ArenaStats after_acquire = GlobalStats();
  EXPECT_GE(after_acquire.heap_allocs + after_acquire.reuses, 1);
  Release(std::move(buf));
  ArenaStats after_release = GlobalStats();
  EXPECT_GE(after_release.releases, 1);
  EXPECT_GE(after_release.cached_bytes,
            static_cast<int64_t>(512 * sizeof(float)));
  EXPECT_GE(after_release.high_water_bytes, after_release.cached_bytes);
}

}  // namespace
}  // namespace garl::nn::arena
