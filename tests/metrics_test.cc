#include <gtest/gtest.h>

#include "env/metrics.h"

namespace garl::env {
namespace {

std::vector<SensorState> Sensors(std::vector<std::pair<double, double>>
                                     initial_remaining) {
  std::vector<SensorState> sensors;
  for (auto [init, rem] : initial_remaining) {
    sensors.push_back({{0, 0}, init, rem});
  }
  return sensors;
}

TEST(MetricsTest, DataCollectionRatioBounds) {
  EXPECT_DOUBLE_EQ(
      DataCollectionRatio(Sensors({{100, 100}, {200, 200}})), 0.0);
  EXPECT_DOUBLE_EQ(DataCollectionRatio(Sensors({{100, 0}, {200, 0}})), 1.0);
  EXPECT_DOUBLE_EQ(DataCollectionRatio(Sensors({{100, 50}, {100, 50}})),
                   0.5);
}

TEST(MetricsTest, DataCollectionRatioEmptyIsZero) {
  EXPECT_DOUBLE_EQ(DataCollectionRatio({}), 0.0);
}

TEST(MetricsTest, FairnessOneWhenUniform) {
  // Equal collected fractions -> Jain index ~ 1.
  EXPECT_NEAR(Fairness(Sensors({{100, 50}, {200, 100}, {300, 150}})), 1.0,
              1e-6);
}

TEST(MetricsTest, FairnessDropsWhenSkewed) {
  double skewed = Fairness(Sensors({{100, 0}, {100, 100}, {100, 100}}));
  EXPECT_NEAR(skewed, 1.0 / 3.0, 1e-6);
}

TEST(MetricsTest, FairnessZeroWhenNothingCollected) {
  EXPECT_NEAR(Fairness(Sensors({{100, 100}, {100, 100}})), 0.0, 1e-6);
}

TEST(MetricsTest, CooperationFactor) {
  EXPECT_DOUBLE_EQ(CooperationFactor(10, 7), 0.7);
  EXPECT_DOUBLE_EQ(CooperationFactor(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(CooperationFactor(5, 5), 1.0);
}

TEST(MetricsTest, EnergyRatioWithCharging) {
  // consumed / (initial + charged).
  EXPECT_DOUBLE_EQ(EnergyRatio(10.0, 20.0, 5.0), 0.4);
  EXPECT_DOUBLE_EQ(EnergyRatio(0.0, 20.0, 0.0), 0.0);
}

TEST(MetricsTest, EfficiencyComposition) {
  EXPECT_NEAR(Efficiency(0.5, 0.8, 0.9, 0.4), 0.5 * 0.8 * 0.9 / 0.4, 1e-9);
}

TEST(MetricsTest, EfficiencyFiniteAtZeroBeta) {
  double lambda = Efficiency(0.5, 0.5, 0.5, 0.0);
  EXPECT_TRUE(std::isfinite(lambda));
}

TEST(MetricsTest, MakeMetricsBundles) {
  EpisodeMetrics m = MakeMetrics(0.6, 0.7, 0.8, 0.3);
  EXPECT_DOUBLE_EQ(m.data_collection_ratio, 0.6);
  EXPECT_DOUBLE_EQ(m.fairness, 0.7);
  EXPECT_DOUBLE_EQ(m.cooperation_factor, 0.8);
  EXPECT_DOUBLE_EQ(m.energy_ratio, 0.3);
  EXPECT_NEAR(m.efficiency, 0.6 * 0.7 * 0.8 / 0.3, 1e-9);
}

// Property sweep: Jain fairness always lies in (0, 1].
class FairnessPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FairnessPropertyTest, StaysInUnitInterval) {
  int seed = GetParam();
  std::vector<SensorState> sensors;
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % 1000 / 1000.0;
  };
  for (int i = 0; i < 20; ++i) {
    double init = 100.0 + 100.0 * next();
    double rem = init * next();
    sensors.push_back({{0, 0}, init, rem});
  }
  double xi = Fairness(sensors);
  EXPECT_GE(xi, 0.0);
  EXPECT_LE(xi, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairnessPropertyTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace garl::env
