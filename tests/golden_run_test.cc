// Golden-run determinism for the observability layer: a seeded training run
// emits a JSONL run log whose deterministic (`det`) payload is byte-identical
// across repeat runs and across GARL_NUM_THREADS settings, and the
// instrumentation itself never perturbs training (losses bit-identical with
// and without a run log). See DESIGN.md, Observability.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "env/world.h"
#include "nn/linear.h"
#include "nn/ops.h"
#include "nn/simd.h"
#include "obs/run_log.h"
#include "rl/feature_policy.h"
#include "rl/ippo_trainer.h"

namespace garl::rl {
namespace {

env::CampusSpec TinyCampus() {
  env::CampusSpec campus;
  campus.name = "tiny";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  campus.sensors.push_back({{260, 190}, 1200.0});
  campus.sensors.push_back({{200, 320}, 900.0});
  return campus;
}

env::WorldParams TinyParams() {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 20;
  params.release_slots = 2;
  return params;
}

// Stateless mean-pool extractor declaring thread-safe inference, so the
// trainer takes the parallel collection path (same as parallel_rollout_test).
class SafePoolExtractor : public UgvFeatureExtractor {
 public:
  explicit SafePoolExtractor(Rng& rng)
      : proj_(std::make_unique<nn::Linear>(5, 16, rng)) {}

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override {
    std::vector<nn::Tensor> features;
    for (const auto& obs : observations) {
      nn::Tensor pooled = nn::MulScalar(
          nn::SumDim(obs.stop_features, 0),
          1.0f / static_cast<float>(obs.stop_features.size(0)));
      nn::Tensor self =
          nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
      features.push_back(
          nn::Tanh(proj_->Forward(nn::Concat({pooled, self}, 0))));
    }
    return features;
  }

  int64_t feature_dim() const override { return 16; }
  std::string name() const override { return "safe_pool"; }
  bool ThreadSafeExtract() const override { return true; }
  std::vector<nn::Tensor> Parameters() const override {
    return proj_->Parameters();
  }

 private:
  std::unique_ptr<nn::Linear> proj_;
};

std::string TempLogPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// One seeded 3-iteration training run; when `run_log_path` is non-empty the
// run streams its JSONL log there.
std::vector<IterationStats> TrainOnce(int64_t threads,
                                      const std::string& run_log_path) {
  ThreadPool::SetGlobalThreads(threads);
  env::World world(TinyCampus(), TinyParams());
  Rng rng(7);
  EnvContext context = MakeEnvContext(world);
  FeatureUgvPolicy policy(std::make_unique<SafePoolExtractor>(rng), context,
                          FeaturePolicyOptions{}, rng);
  TrainConfig config;
  config.iterations = 3;
  config.episodes_per_iteration = 3;
  config.seed = 11;
  config.run_log_path = run_log_path;
  IppoTrainer trainer(&world, &policy, nullptr, config);
  auto result = trainer.Train();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  ThreadPool::SetGlobalThreads(1);
  return result.ok() ? result.value() : std::vector<IterationStats>{};
}

// The `det` object's raw bytes from every line of a run log.
std::vector<std::string> DetPayloads(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> payloads;
  std::string line;
  while (std::getline(in, line)) {
    StatusOr<std::string> det = obs::DeterministicPayload(line);
    EXPECT_TRUE(det.ok()) << det.status().ToString();
    payloads.push_back(det.ok() ? det.value() : "");
  }
  return payloads;
}

TEST(GoldenRunTest, DetPayloadByteIdenticalAcrossRepeatRuns) {
  const std::string log_a = TempLogPath("golden_repeat_a.jsonl");
  const std::string log_b = TempLogPath("golden_repeat_b.jsonl");
  TrainOnce(1, log_a);
  TrainOnce(1, log_b);
  std::vector<std::string> a = DetPayloads(log_a);
  std::vector<std::string> b = DetPayloads(log_b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a, b);
}

TEST(GoldenRunTest, DetPayloadByteIdenticalAcrossThreadCounts) {
  const std::string log_one = TempLogPath("golden_threads_1.jsonl");
  const std::string log_four = TempLogPath("golden_threads_4.jsonl");
  TrainOnce(1, log_one);
  TrainOnce(4, log_four);
  std::vector<std::string> one = DetPayloads(log_one);
  std::vector<std::string> four = DetPayloads(log_four);
  ASSERT_EQ(one.size(), 3u);
  EXPECT_EQ(one, four);
}

// The full gating matrix for the SIMD overhaul: det payloads must be
// byte-identical across GARL_SIMD {0, 1} x GARL_NUM_THREADS {1, 4}. The
// kernels keep per-element accumulation order identical between their scalar
// and vector bodies (see src/nn/simd.h), so flipping either knob cannot
// change a single bit of the deterministic payload.
TEST(GoldenRunTest, DetPayloadByteIdenticalAcrossSimdAndThreadMatrix) {
  bool original = nn::simd::Enabled();
  std::vector<std::string> reference;
  for (bool simd_on : {false, true}) {
    for (int64_t threads : {int64_t{1}, int64_t{4}}) {
      nn::simd::SetEnabledForTest(simd_on);
      const std::string log = TempLogPath(
          "golden_simd_" + std::to_string(simd_on) + "_t" +
          std::to_string(threads) + ".jsonl");
      TrainOnce(threads, log);
      std::vector<std::string> payloads = DetPayloads(log);
      ASSERT_EQ(payloads.size(), 3u)
          << "simd=" << simd_on << " threads=" << threads;
      if (reference.empty()) {
        reference = payloads;
      } else {
        EXPECT_EQ(payloads, reference)
            << "simd=" << simd_on << " threads=" << threads;
      }
    }
  }
  nn::simd::SetEnabledForTest(original);
}

TEST(GoldenRunTest, EmittedLogPassesSchemaValidation) {
  const std::string log = TempLogPath("golden_schema.jsonl");
  TrainOnce(2, log);
  Status status = obs::ValidateRunLogFile(log);
  EXPECT_TRUE(status.ok()) << status.ToString();
  StatusOr<obs::RunLogSummary> summary = obs::SummarizeRunLogFile(log);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().records, 3);
  // The trainer's phase spans must actually show up in the log.
  EXPECT_GT(summary.value().spans.count("trainer/collect"), 0u);
  EXPECT_GT(summary.value().spans.count("trainer/update_ugv"), 0u);
}

TEST(GoldenRunTest, InstrumentationDoesNotPerturbTraining) {
  std::vector<IterationStats> logged =
      TrainOnce(2, TempLogPath("golden_perturb.jsonl"));
  std::vector<IterationStats> bare = TrainOnce(2, "");
  ASSERT_EQ(logged.size(), bare.size());
  for (size_t i = 0; i < logged.size(); ++i) {
    EXPECT_EQ(logged[i].ugv_episode_reward, bare[i].ugv_episode_reward) << i;
    EXPECT_EQ(logged[i].policy_loss, bare[i].policy_loss) << i;
    EXPECT_EQ(logged[i].value_loss, bare[i].value_loss) << i;
    EXPECT_EQ(logged[i].entropy, bare[i].entropy) << i;
    EXPECT_EQ(logged[i].ugv_grad_norm, bare[i].ugv_grad_norm) << i;
    EXPECT_EQ(logged[i].metrics.data_collection_ratio,
              bare[i].metrics.data_collection_ratio)
        << i;
    EXPECT_EQ(logged[i].metrics.fairness, bare[i].metrics.fairness) << i;
    EXPECT_EQ(logged[i].metrics.energy_ratio, bare[i].metrics.energy_ratio)
        << i;
  }
}

TEST(GoldenRunTest, RecordedLossesMatchReturnedStats) {
  const std::string log = TempLogPath("golden_stats.jsonl");
  std::vector<IterationStats> stats = TrainOnce(1, log);
  ASSERT_EQ(stats.size(), 3u);
  std::ifstream in(log);
  ASSERT_TRUE(in.is_open());
  std::string line;
  for (size_t i = 0; i < stats.size(); ++i) {
    ASSERT_TRUE(std::getline(in, line)) << i;
    StatusOr<obs::IterationRecord> record = obs::ParseIterationRecord(line);
    ASSERT_TRUE(record.ok()) << record.status().ToString();
    EXPECT_EQ(record.value().iteration, static_cast<int64_t>(i));
    EXPECT_EQ(record.value().policy_loss, stats[i].policy_loss) << i;
    EXPECT_EQ(record.value().value_loss, stats[i].value_loss) << i;
    EXPECT_EQ(record.value().entropy, stats[i].entropy) << i;
    EXPECT_EQ(record.value().psi, stats[i].metrics.data_collection_ratio)
        << i;
  }
  EXPECT_FALSE(std::getline(in, line));  // exactly one line per iteration
}

}  // namespace
}  // namespace garl::rl
