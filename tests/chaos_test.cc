// Chaos suite for the deterministic fault-injection harness (ISSUE 5):
// hostile fault schedules degrade training gracefully instead of aborting,
// schedules are bit-reproducible per (seed, fault seed) across repeat runs,
// thread counts and kill-and-resume, transient filesystem faults are
// retried to success while persistent ones surface as Status, and faulty
// run logs still pass schema validation. See DESIGN.md, "Fault model &
// graceful degradation".

#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fs_util.h"
#include "common/thread_pool.h"
#include "env/world.h"
#include "nn/linear.h"
#include "nn/ops.h"
#include "obs/run_log.h"
#include "rl/feature_policy.h"
#include "rl/ippo_trainer.h"
#include "sim/faults.h"

namespace garl::rl {
namespace {

env::CampusSpec TinyCampus() {
  env::CampusSpec campus;
  campus.name = "tiny";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  campus.sensors.push_back({{260, 190}, 1200.0});
  campus.sensors.push_back({{200, 320}, 900.0});
  return campus;
}

env::WorldParams TinyParams() {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 20;
  params.release_slots = 2;
  return params;
}

// Stateless mean-pool extractor declaring thread-safe inference, so the
// trainer takes the parallel collection path (same as golden_run_test).
class SafePoolExtractor : public UgvFeatureExtractor {
 public:
  explicit SafePoolExtractor(Rng& rng)
      : proj_(std::make_unique<nn::Linear>(5, 16, rng)) {}

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override {
    std::vector<nn::Tensor> features;
    for (const auto& obs : observations) {
      nn::Tensor pooled = nn::MulScalar(
          nn::SumDim(obs.stop_features, 0),
          1.0f / static_cast<float>(obs.stop_features.size(0)));
      nn::Tensor self =
          nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
      features.push_back(
          nn::Tanh(proj_->Forward(nn::Concat({pooled, self}, 0))));
    }
    return features;
  }

  int64_t feature_dim() const override { return 16; }
  std::string name() const override { return "safe_pool"; }
  bool ThreadSafeExtract() const override { return true; }
  std::vector<nn::Tensor> Parameters() const override {
    return proj_->Parameters();
  }

 private:
  std::unique_ptr<nn::Linear> proj_;
};

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// Fresh scratch directory (checkpoints); removes leftovers from prior runs.
std::string TestDir(const std::string& label) {
  const std::string dir = TempPath(label);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

// Every env-level fault class armed at once, aggressively.
sim::FaultConfig HostileFaults() {
  sim::FaultConfig faults;
  faults.enabled = true;
  faults.seed = 5;
  faults.uav_dropout_prob = 0.8;
  faults.ugv_stall_prob = 0.8;
  faults.comm_blackout_prob = 0.8;
  faults.sensor_fault_prob = 0.8;
  return faults;
}

// Moderate schedule for the degradation bound: faults fire most episodes
// but leave the fleet partially operational.
sim::FaultConfig ModerateFaults() {
  sim::FaultConfig faults;
  faults.enabled = true;
  faults.seed = 5;
  faults.uav_dropout_prob = 0.4;
  faults.ugv_stall_prob = 0.4;
  faults.comm_blackout_prob = 0.4;
  faults.sensor_fault_prob = 0.4;
  return faults;
}

struct ChaosRunOptions {
  int64_t threads = 1;
  int64_t iterations = 3;
  std::string run_log_path;
  std::string checkpoint_dir;
  sim::FaultConfig faults;
};

// One seeded training run under the given fault schedule. Mirrors
// golden_run_test's TrainOnce so clean/faulty runs differ only in faults.
StatusOr<std::vector<IterationStats>> ChaosTrain(const ChaosRunOptions& opts) {
  ThreadPool::SetGlobalThreads(opts.threads);
  env::World world(TinyCampus(), TinyParams());
  Rng rng(7);
  EnvContext context = MakeEnvContext(world);
  FeatureUgvPolicy policy(std::make_unique<SafePoolExtractor>(rng), context,
                          FeaturePolicyOptions{}, rng);
  TrainConfig config;
  config.iterations = opts.iterations;
  config.episodes_per_iteration = 3;
  config.seed = 11;
  config.run_log_path = opts.run_log_path;
  config.checkpoint_dir = opts.checkpoint_dir;
  config.faults = opts.faults;
  IppoTrainer trainer(&world, &policy, nullptr, config);
  StatusOr<std::vector<IterationStats>> result = trainer.Train();
  ThreadPool::SetGlobalThreads(1);
  return result;
}

std::vector<IterationStats> ChaosTrainOk(const ChaosRunOptions& opts) {
  StatusOr<std::vector<IterationStats>> result = ChaosTrain(opts);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.value() : std::vector<IterationStats>{};
}

// The `det` object's raw bytes from every line of a run log.
std::vector<std::string> DetPayloads(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> payloads;
  std::string line;
  while (std::getline(in, line)) {
    StatusOr<std::string> det = obs::DeterministicPayload(line);
    EXPECT_TRUE(det.ok()) << det.status().ToString();
    payloads.push_back(det.ok() ? det.value() : "");
  }
  return payloads;
}

sim::FaultCounts TotalFaults(const std::vector<IterationStats>& stats) {
  sim::FaultCounts total;
  for (const auto& iteration : stats) total += iteration.fault_counts;
  return total;
}

double MeanEfficiency(const std::vector<IterationStats>& stats) {
  double sum = 0.0;
  for (const auto& iteration : stats) sum += iteration.metrics.efficiency;
  return stats.empty() ? 0.0 : sum / static_cast<double>(stats.size());
}

void ExpectStatsBitIdentical(const IterationStats& a, const IterationStats& b,
                             size_t index) {
  EXPECT_EQ(a.ugv_episode_reward, b.ugv_episode_reward) << index;
  EXPECT_EQ(a.policy_loss, b.policy_loss) << index;
  EXPECT_EQ(a.value_loss, b.value_loss) << index;
  EXPECT_EQ(a.entropy, b.entropy) << index;
  EXPECT_EQ(a.ugv_grad_norm, b.ugv_grad_norm) << index;
  EXPECT_EQ(a.metrics.data_collection_ratio, b.metrics.data_collection_ratio)
      << index;
  EXPECT_EQ(a.metrics.fairness, b.metrics.fairness) << index;
  EXPECT_EQ(a.metrics.energy_ratio, b.metrics.energy_ratio) << index;
  EXPECT_EQ(a.metrics.efficiency, b.metrics.efficiency) << index;
  EXPECT_TRUE(a.fault_counts == b.fault_counts) << index;
  EXPECT_EQ(a.fault_digest, b.fault_digest) << index;
}

TEST(ChaosTest, HostileScheduleTrainsWithoutAbort) {
  ChaosRunOptions opts;
  opts.faults = HostileFaults();
  std::vector<IterationStats> stats = ChaosTrainOk(opts);
  ASSERT_EQ(stats.size(), 3u);
  const sim::FaultCounts total = TotalFaults(stats);
  EXPECT_GT(total.uav_dropouts + total.ugv_stalls + total.comm_blackouts +
                total.sensor_faults,
            0);
  for (size_t i = 0; i < stats.size(); ++i) {
    EXPECT_TRUE(std::isfinite(stats[i].policy_loss)) << i;
    EXPECT_TRUE(std::isfinite(stats[i].value_loss)) << i;
    EXPECT_TRUE(std::isfinite(stats[i].metrics.efficiency)) << i;
    EXPECT_GE(stats[i].metrics.data_collection_ratio, 0.0) << i;
    EXPECT_LE(stats[i].metrics.data_collection_ratio, 1.0) << i;
    EXPECT_NE(stats[i].fault_digest, 0u) << i;
  }
}

TEST(ChaosTest, FaultSeedSelectsTheSchedule) {
  ChaosRunOptions opts;
  opts.faults = ModerateFaults();
  std::vector<IterationStats> a = ChaosTrainOk(opts);
  opts.faults.seed = 6;
  std::vector<IterationStats> b = ChaosTrainOk(opts);
  ASSERT_EQ(a.size(), b.size());
  bool any_digest_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_digest_differs |= a[i].fault_digest != b[i].fault_digest;
  }
  EXPECT_TRUE(any_digest_differs);
}

TEST(ChaosTest, DegradationUnderModerateFaultsIsBounded) {
  std::vector<IterationStats> clean = ChaosTrainOk(ChaosRunOptions{});
  ChaosRunOptions faulty_opts;
  faulty_opts.faults = ModerateFaults();
  std::vector<IterationStats> faulty = ChaosTrainOk(faulty_opts);
  ASSERT_EQ(clean.size(), faulty.size());
  const double clean_eff = MeanEfficiency(clean);
  const double faulty_eff = MeanEfficiency(faulty);
  ASSERT_GT(clean_eff, 0.0);
  EXPECT_TRUE(std::isfinite(faulty_eff));
  // Graceful degradation: surviving coalition members absorb failed peers'
  // collection share, so a moderately hostile schedule costs efficiency but
  // never collapses the run.
  EXPECT_GE(faulty_eff, 0.2 * clean_eff)
      << "clean=" << clean_eff << " faulty=" << faulty_eff;
}

TEST(ChaosTest, DetPayloadByteIdenticalAcrossRepeatRunsUnderFaults) {
  ChaosRunOptions opts;
  opts.faults = HostileFaults();
  opts.run_log_path = TempPath("chaos_repeat_a.jsonl");
  ChaosTrainOk(opts);
  const std::string log_a = opts.run_log_path;
  opts.run_log_path = TempPath("chaos_repeat_b.jsonl");
  ChaosTrainOk(opts);
  std::vector<std::string> a = DetPayloads(log_a);
  std::vector<std::string> b = DetPayloads(opts.run_log_path);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a, b);
}

TEST(ChaosTest, DetPayloadByteIdenticalAcrossThreadCountsUnderFaults) {
  ChaosRunOptions opts;
  opts.faults = HostileFaults();
  opts.run_log_path = TempPath("chaos_threads_1.jsonl");
  std::vector<IterationStats> one_stats = ChaosTrainOk(opts);
  const std::string log_one = opts.run_log_path;
  opts.threads = 4;
  opts.run_log_path = TempPath("chaos_threads_4.jsonl");
  std::vector<IterationStats> four_stats = ChaosTrainOk(opts);
  std::vector<std::string> one = DetPayloads(log_one);
  std::vector<std::string> four = DetPayloads(opts.run_log_path);
  ASSERT_EQ(one.size(), 3u);
  EXPECT_EQ(one, four);
  ASSERT_EQ(one_stats.size(), four_stats.size());
  for (size_t i = 0; i < one_stats.size(); ++i) {
    ExpectStatsBitIdentical(one_stats[i], four_stats[i], i);
  }
}

TEST(ChaosTest, KillAndResumeInsideFaultWindowIsBitIdentical) {
  const sim::FaultConfig faults = HostileFaults();

  // Reference: six uninterrupted iterations under the hostile schedule.
  ChaosRunOptions full_opts;
  full_opts.iterations = 6;
  full_opts.faults = faults;
  std::vector<IterationStats> full = ChaosTrainOk(full_opts);
  ASSERT_EQ(full.size(), 6u);

  const std::string dir = TestDir("chaos_resume_ckpt");

  // First half: three iterations, then persist the full trainer state.
  ThreadPool::SetGlobalThreads(1);
  env::World world_b(TinyCampus(), TinyParams());
  Rng rng_b(7);
  EnvContext context_b = MakeEnvContext(world_b);
  FeatureUgvPolicy policy_b(std::make_unique<SafePoolExtractor>(rng_b),
                            context_b, FeaturePolicyOptions{}, rng_b);
  TrainConfig config;
  config.iterations = 3;
  config.episodes_per_iteration = 3;
  config.seed = 11;
  config.faults = faults;
  IppoTrainer trainer_b(&world_b, &policy_b, nullptr, config);
  StatusOr<std::vector<IterationStats>> first = trainer_b.Train();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Status saved = trainer_b.SaveCheckpoint(dir);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  // Second half: a freshly-built trainer (different construction seed, so
  // the restore must overwrite everything) resumes mid-schedule.
  env::World world_c(TinyCampus(), TinyParams());
  Rng rng_c(999);
  EnvContext context_c = MakeEnvContext(world_c);
  FeatureUgvPolicy policy_c(std::make_unique<SafePoolExtractor>(rng_c),
                            context_c, FeaturePolicyOptions{}, rng_c);
  IppoTrainer trainer_c(&world_c, &policy_c, nullptr, config);
  Status restored = trainer_c.RestoreCheckpoint(dir);
  ASSERT_TRUE(restored.ok()) << restored.ToString();
  StatusOr<std::vector<IterationStats>> second = trainer_c.Train();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second.value().size(), 3u);

  // The resumed run replays the exact fault schedule (keyed by the restored
  // episode counter) and the exact trajectory stream.
  for (size_t i = 0; i < second.value().size(); ++i) {
    ExpectStatsBitIdentical(full[i + 3], second.value()[i], i);
  }
}

TEST(ChaosTest, TransientFsFaultsAreRetriedToSuccess) {
  ChaosRunOptions opts;
  opts.faults = ModerateFaults();
  opts.faults.fs_fault_prob = 0.6;
  opts.faults.fs_max_consecutive = 2;
  opts.run_log_path = TempPath("chaos_fs.jsonl");
  opts.checkpoint_dir = TestDir("chaos_fs_ckpt");
  ChaosTrainOk(opts);

  // Every injected failure was masked by a retry: the log is complete and
  // the last record carries non-zero fs bookkeeping in its rt payload.
  std::ifstream in(opts.run_log_path);
  ASSERT_TRUE(in.is_open());
  std::string line, last;
  size_t lines = 0;
  while (std::getline(in, line)) {
    last = line;
    ++lines;
  }
  ASSERT_EQ(lines, 3u);
  StatusOr<obs::IterationRecord> record = obs::ParseIterationRecord(last);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_TRUE(record.value().faults_enabled);
  EXPECT_GT(record.value().fault_fs_injected, 0);
  EXPECT_GT(record.value().fault_fs_recovered, 0);
  EXPECT_GE(record.value().fault_fs_injected,
            record.value().fault_fs_recovered);
}

TEST(ChaosTest, PersistentFsFaultSurfacesAsStatusNotAbort) {
  const std::string dir = TestDir("chaos_persist_ckpt");
  // A hook that fails every write attempt against the checkpoint directory:
  // the retry budget runs out and Train() must surface a Status, not abort.
  ScopedWriteFaultHook hook([&dir](std::string_view path) {
    InjectedWriteFault fault;
    if (path.find(dir) != std::string_view::npos) fault.error_number = EIO;
    return fault;
  });
  ChaosRunOptions opts;
  opts.checkpoint_dir = dir;
  StatusOr<std::vector<IterationStats>> result = ChaosTrain(opts);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("durable write failed"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ChaosTest, FaultyLogPassesValidationAndRecordsEvents) {
  ChaosRunOptions opts;
  opts.faults = HostileFaults();
  opts.run_log_path = TempPath("chaos_schema.jsonl");
  std::vector<IterationStats> stats = ChaosTrainOk(opts);
  ASSERT_EQ(stats.size(), 3u);

  Status valid = obs::ValidateRunLogFile(opts.run_log_path);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  StatusOr<obs::RunLogSummary> summary =
      obs::SummarizeRunLogFile(opts.run_log_path);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().records, 3);
  EXPECT_EQ(summary.value().fault_records, 3);
  EXPECT_GT(summary.value().fault_events, 0);

  // Parsed records round-trip the schedule digest the trainer reported.
  std::ifstream in(opts.run_log_path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  for (size_t i = 0; i < stats.size(); ++i) {
    ASSERT_TRUE(std::getline(in, line)) << i;
    StatusOr<obs::IterationRecord> record = obs::ParseIterationRecord(line);
    ASSERT_TRUE(record.ok()) << record.status().ToString();
    EXPECT_TRUE(record.value().faults_enabled) << i;
    EXPECT_EQ(record.value().fault_digest, stats[i].fault_digest) << i;
    EXPECT_EQ(record.value().fault_uav_dropouts,
              stats[i].fault_counts.uav_dropouts)
        << i;
  }
}

}  // namespace
}  // namespace garl::rl
