#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "env/campus_factory.h"
#include "env/render.h"
#include "env/stop_network.h"

namespace garl::env {
namespace {

CampusSpec SmallCampus() {
  CampusSpec campus;
  campus.name = "small";
  campus.width = 300;
  campus.height = 200;
  campus.roads.push_back({{0, 100}, {300, 100}});
  campus.buildings.push_back({50, 120, 120, 180});
  campus.sensors.push_back({{60, 115}, 1000.0});
  return campus;
}

TEST(RenderTest, CampusSvgIsWellFormed) {
  CampusSpec campus = SmallCampus();
  StopNetwork stops = BuildStopNetwork(campus, 100.0);
  std::string svg = RenderCampusSvg(campus, &stops);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);    // building
  EXPECT_NE(svg.find("<line"), std::string::npos);    // road
  EXPECT_NE(svg.find("<circle"), std::string::npos);  // sensor/stop
}

TEST(RenderTest, NoStopsVariant) {
  CampusSpec campus = SmallCampus();
  std::string svg = RenderCampusSvg(campus, nullptr);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(RenderTest, TracesProducePolylines) {
  CampusSpec campus = SmallCampus();
  StopNetwork stops = BuildStopNetwork(campus, 100.0);
  std::vector<std::vector<Vec2>> ugv = {{{10, 10}, {50, 50}, {90, 90}}};
  std::vector<std::vector<Vec2>> uav = {{{10, 10}, {30, 80}}};
  std::string svg = RenderTracesSvg(campus, &stops, ugv, uav);
  // One solid UGV polyline + one dashed UAV polyline.
  size_t first = svg.find("<polyline");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(svg.find("<polyline", first + 1), std::string::npos);
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);
}

TEST(RenderTest, SinglePointTraceIsSkipped) {
  CampusSpec campus = SmallCampus();
  std::vector<std::vector<Vec2>> ugv = {{{10, 10}}};
  std::string svg = RenderTracesSvg(campus, nullptr, ugv, {});
  EXPECT_EQ(svg.find("<polyline"), std::string::npos);
}

TEST(RenderTest, WriteSvgRoundTrip) {
  std::string path = "/tmp/garl_render_test/out.svg";
  ASSERT_TRUE(WriteSvg("<svg></svg>", path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "<svg></svg>");
  std::remove(path.c_str());
}

TEST(RenderTest, KaistRendersAllBuildings) {
  CampusSpec kaist = MakeKaistCampus();
  std::string svg = RenderCampusSvg(kaist, nullptr,
                                    {.scale = 0.2, .draw_stops = false});
  size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, kaist.buildings.size() + 1);  // +1 background
}

}  // namespace
}  // namespace garl::env
