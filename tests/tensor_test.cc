#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace garl::nn {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
  EXPECT_FALSE(t.requires_grad());
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorTest, FromVectorKeepsData) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 1}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 1}), 4.0f);
}

TEST(TensorTest, ScalarItem) {
  Tensor t = Tensor::Scalar(3.5f);
  EXPECT_EQ(t.dim(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_EQ(t.item(), 3.5f);
}

TEST(TensorTest, EyeIsIdentity) {
  Tensor t = Tensor::Eye(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(t.at({i, j}), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(TensorTest, SetMutatesValue) {
  Tensor t = Tensor::Zeros({2, 2});
  t.set({1, 0}, 9.0f);
  EXPECT_EQ(t.at({1, 0}), 9.0f);
}

TEST(TensorTest, FlatIndexRowMajor) {
  EXPECT_EQ(FlatIndex({2, 3}, {0, 0}), 0);
  EXPECT_EQ(FlatIndex({2, 3}, {0, 2}), 2);
  EXPECT_EQ(FlatIndex({2, 3}, {1, 0}), 3);
  EXPECT_EQ(FlatIndex({2, 3, 4}, {1, 2, 3}), 23);
}

TEST(TensorTest, DetachCopiesValueDropsGraph) {
  Tensor t = Tensor::FromVector({2}, {1, 2}, /*requires_grad=*/true);
  Tensor d = t.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.data(), t.data());
  d.mutable_data()[0] = 100.0f;
  EXPECT_EQ(t.data()[0], 1.0f);  // no aliasing
}

TEST(TensorTest, HandleSharesStorage) {
  Tensor t = Tensor::Zeros({2});
  Tensor alias = t;
  alias.mutable_data()[0] = 5.0f;
  EXPECT_EQ(t.data()[0], 5.0f);
  EXPECT_TRUE(t.IsSameAs(alias));
}

TEST(TensorTest, ShapeStringFormats) {
  EXPECT_EQ(Tensor::Zeros({2, 3}).ShapeString(), "[2, 3]");
  EXPECT_EQ(Tensor::Scalar(1.0f).ShapeString(), "[]");
  EXPECT_EQ(Tensor().ShapeString(), "<null>");
}

TEST(TensorTest, GradBufferStartsZero) {
  Tensor t = Tensor::Zeros({3}, /*requires_grad=*/true);
  const auto& g = t.grad();
  EXPECT_EQ(g.size(), 3u);
  for (float v : g) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace garl::nn
