#include <gtest/gtest.h>

#include "env/geometry.h"

namespace garl::env {
namespace {

TEST(Vec2Test, Arithmetic) {
  Vec2 a{1, 2}, b{3, 4};
  EXPECT_EQ((a + b), (Vec2{4, 6}));
  EXPECT_EQ((b - a), (Vec2{2, 2}));
  EXPECT_EQ((a * 2.0), (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), std::sqrt(8.0));
}

TEST(RectTest, ContainsAndCenter) {
  Rect r{0, 0, 10, 20};
  EXPECT_TRUE(r.Contains({5, 10}));
  EXPECT_TRUE(r.Contains({0, 0}));  // boundary inclusive
  EXPECT_FALSE(r.Contains({-1, 5}));
  EXPECT_EQ(r.Center(), (Vec2{5, 10}));
  EXPECT_DOUBLE_EQ(r.Width(), 10);
  EXPECT_DOUBLE_EQ(r.Height(), 20);
}

TEST(RectTest, ExpandedAndIntersects) {
  Rect r{0, 0, 10, 10};
  Rect e = r.Expanded(5);
  EXPECT_TRUE(e.Contains({-4, -4}));
  EXPECT_TRUE(r.Intersects(Rect{5, 5, 15, 15}));
  EXPECT_FALSE(r.Intersects(Rect{11, 0, 20, 10}));
}

TEST(SegmentRectTest, CrossingSegment) {
  Rect r{4, 4, 6, 6};
  EXPECT_TRUE(SegmentIntersectsRect({0, 5}, {10, 5}, r));   // through
  EXPECT_TRUE(SegmentIntersectsRect({5, 5}, {20, 20}, r));  // starts inside
  EXPECT_FALSE(SegmentIntersectsRect({0, 0}, {10, 0}, r));  // below
  EXPECT_FALSE(SegmentIntersectsRect({0, 0}, {3, 3}, r));   // short of it
}

TEST(SegmentRectTest, DiagonalGrazes) {
  Rect r{0, 0, 10, 10};
  EXPECT_TRUE(SegmentIntersectsRect({-5, 5}, {5, 5}, r));
  EXPECT_FALSE(SegmentIntersectsRect({-5, 20}, {20, 20}, r));
}

TEST(MoveWithObstaclesTest, FreeSpaceCapsAtMaxDist) {
  bool blocked = true;
  Vec2 end = MoveWithObstacles({0, 0}, {100, 0}, 30.0, {}, &blocked);
  EXPECT_FALSE(blocked);
  EXPECT_NEAR(end.x, 30.0, 1e-9);
  EXPECT_NEAR(end.y, 0.0, 1e-9);
}

TEST(MoveWithObstaclesTest, ReachesNearTarget) {
  bool blocked = true;
  Vec2 end = MoveWithObstacles({0, 0}, {5, 5}, 100.0, {}, &blocked);
  EXPECT_FALSE(blocked);
  EXPECT_NEAR(end.x, 5.0, 1e-9);
}

TEST(MoveWithObstaclesTest, StopsBeforeBuilding) {
  std::vector<Rect> obstacles = {{10, -5, 20, 5}};
  bool blocked = false;
  Vec2 end = MoveWithObstacles({0, 0}, {30, 0}, 100.0, obstacles, &blocked);
  EXPECT_TRUE(blocked);
  EXPECT_LT(end.x, 10.0);
  EXPECT_GT(end.x, 8.0);  // stops just short of the wall
}

TEST(MoveWithObstaclesTest, PassesBesideBuilding) {
  std::vector<Rect> obstacles = {{10, 10, 20, 20}};
  bool blocked = true;
  Vec2 end = MoveWithObstacles({0, 0}, {30, 0}, 100.0, obstacles, &blocked);
  EXPECT_FALSE(blocked);
  EXPECT_NEAR(end.x, 30.0, 1e-9);
}

TEST(MoveWithObstaclesTest, StartingInsideStaysPut) {
  std::vector<Rect> obstacles = {{-5, -5, 5, 5}};
  bool blocked = false;
  Vec2 end = MoveWithObstacles({0, 0}, {30, 0}, 100.0, obstacles, &blocked);
  EXPECT_TRUE(blocked);
  EXPECT_EQ(end, (Vec2{0, 0}));
}

TEST(ClampToFieldTest, ClampsBothAxes) {
  Vec2 p = ClampToField({-5, 300}, 100, 200);
  EXPECT_EQ(p, (Vec2{0, 200}));
  EXPECT_EQ(ClampToField({50, 50}, 100, 200), (Vec2{50, 50}));
}

}  // namespace
}  // namespace garl::env
