#include "nn/serialization.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/fs_util.h"
#include "common/rng.h"
#include "nn/optimizer.h"

// Crash-safety and corruption-rejection coverage for the v2 checkpoint
// format: CRC known answers, atomic replacement, legacy v1 retirement and
// one-shot migration, strict trailing-byte rejection, and truncation/bit-flip
// fuzzing. Every
// corrupted input must come back as a non-OK Status — never an abort, never
// silently loaded garbage.

namespace garl::nn {
namespace {

namespace fs = std::filesystem;

std::string TestPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<Tensor> MakeParams(uint64_t seed) {
  Rng rng(seed);
  std::vector<float> a(12), b(5);
  for (float& v : a) v = rng.NormalF();
  for (float& v : b) v = rng.NormalF();
  return {Tensor::FromVector({3, 4}, a, /*requires_grad=*/true),
          Tensor::FromVector({5}, b, /*requires_grad=*/true)};
}

std::string ReadAll(const std::string& path) {
  StatusOr<std::string> contents = ReadFileToString(path);
  EXPECT_TRUE(contents.ok()) << contents.status().ToString();
  return contents.ok() ? contents.value() : std::string();
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(Crc32Test, KnownAnswers) {
  // IEEE 802.3 check value for the standard 9-byte test vector.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("garl"), Crc32("garl"));
  EXPECT_NE(Crc32("garl"), Crc32("gArl"));
}

TEST(Crc32Test, SeedChainsIncrementalUpdates) {
  std::string text = "air-ground spatial crowdsourcing";
  uint32_t whole = Crc32(text);
  uint32_t chained = Crc32(text.substr(7), Crc32(text.substr(0, 7)));
  EXPECT_EQ(whole, chained);
}

TEST(AtomicWriteFileTest, CreatesReplacesAndLeavesNoTempFile) {
  std::string path = TestPath("atomic_write.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  EXPECT_EQ(ReadAll(path), "first");
  ASSERT_TRUE(AtomicWriteFile(path, "second, longer contents").ok());
  EXPECT_EQ(ReadAll(path), "second, longer contents");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicWriteFileTest, FailsCleanlyOnMissingDirectory) {
  Status status =
      AtomicWriteFile(TestPath("no_such_dir/x.bin"), "payload");
  EXPECT_FALSE(status.ok());
}

TEST(SerializationTest, V2RoundTrip) {
  std::string path = TestPath("round_trip.bin");
  std::vector<Tensor> saved = MakeParams(1);
  ASSERT_TRUE(SaveParameters(saved, path).ok());
  std::vector<Tensor> loaded = MakeParams(2);
  ASSERT_TRUE(LoadParameters(path, loaded).ok());
  for (size_t i = 0; i < saved.size(); ++i) {
    EXPECT_EQ(loaded[i].data(), saved[i].data());
  }
}

TEST(SerializationTest, BufferRoundTripIsStrict) {
  std::vector<Tensor> saved = MakeParams(3);
  std::string bytes;
  SerializeParameters(saved, &bytes);
  std::vector<Tensor> loaded = MakeParams(4);
  ASSERT_TRUE(DeserializeParameters(bytes, loaded).ok());
  for (size_t i = 0; i < saved.size(); ++i) {
    EXPECT_EQ(loaded[i].data(), saved[i].data());
  }
  // One extra byte anywhere must be rejected.
  EXPECT_FALSE(DeserializeParameters(bytes + "x", loaded).ok());
  EXPECT_FALSE(
      DeserializeParameters(std::string_view(bytes.data(), bytes.size() - 1),
                            loaded)
          .ok());
}

TEST(SerializationTest, RejectsTrailingGarbageEvenWithValidCrc) {
  std::string path = TestPath("trailing.bin");
  std::vector<Tensor> params = MakeParams(5);
  ASSERT_TRUE(SaveParameters(params, path).ok());
  // Rebuild the file as payload + garbage + CRC(payload + garbage): the
  // footer is consistent, so only the strict tensor parser can catch it.
  std::string bytes = ReadAll(path);
  std::string payload = bytes.substr(0, bytes.size() - 4);
  payload += "\xde\xad\xbe\xef";
  uint32_t crc = Crc32(payload);
  payload.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  WriteRaw(path, payload);
  Status status = LoadParameters(path, params);
  EXPECT_FALSE(status.ok()) << "trailing garbage accepted";
}

TEST(SerializationTest, CountAndShapeMismatchesRejected) {
  std::string path = TestPath("mismatch.bin");
  ASSERT_TRUE(SaveParameters(MakeParams(6), path).ok());
  std::vector<Tensor> fewer = {MakeParams(6)[0]};
  EXPECT_FALSE(LoadParameters(path, fewer).ok());
  std::vector<Tensor> reshaped = {
      Tensor::Zeros({4, 3}, /*requires_grad=*/true),
      Tensor::Zeros({5}, /*requires_grad=*/true)};
  EXPECT_FALSE(LoadParameters(path, reshaped).ok());
}

// Hand-writes the retired v1 layout: magic "GARL", u64 count, then
// rank/shape/payload per tensor (no CRC footer).
std::string MakeV1Bytes(const std::vector<Tensor>& params) {
  std::string bytes;
  uint32_t magic = 0x4741524Cu;
  uint64_t count = params.size();
  bytes.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  bytes.append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : params) {
    uint32_t rank = static_cast<uint32_t>(p.dim());
    bytes.append(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int64_t d : p.shape()) {
      bytes.append(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    bytes.append(reinterpret_cast<const char*>(p.data().data()),
                 static_cast<size_t>(p.numel()) * sizeof(float));
  }
  return bytes;
}

TEST(SerializationTest, LegacyV1IsRetiredAndPointsAtMigration) {
  std::string path = TestPath("legacy_v1.bin");
  WriteRaw(path, MakeV1Bytes(MakeParams(7)));
  std::vector<Tensor> loaded = MakeParams(8);
  Status status = LoadParameters(path, loaded);
  ASSERT_FALSE(status.ok()) << "retired v1 format loaded";
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("migrate-v1"), std::string::npos)
      << status.ToString();
}

TEST(SerializationTest, MigrateV1RoundTripsThroughV2) {
  std::string src = TestPath("migrate_src.bin");
  std::string dst = TestPath("migrate_dst.bin");
  std::vector<Tensor> params = MakeParams(7);
  WriteRaw(src, MakeV1Bytes(params));
  ASSERT_TRUE(MigrateV1ParameterFile(src, dst).ok());
  std::vector<Tensor> loaded = MakeParams(8);
  ASSERT_TRUE(LoadParameters(dst, loaded).ok());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(loaded[i].data(), params[i].data());
  }
}

TEST(SerializationTest, MigrateV1RejectsCorruptInputs) {
  std::string src = TestPath("migrate_bad.bin");
  std::string dst = TestPath("migrate_bad_out.bin");
  std::string bytes = MakeV1Bytes(MakeParams(7));
  // Trailing bytes after the last tensor payload.
  WriteRaw(src, bytes + "zz");
  EXPECT_FALSE(MigrateV1ParameterFile(src, dst).ok());
  // Truncated mid-payload.
  WriteRaw(src, bytes.substr(0, bytes.size() - 3));
  EXPECT_FALSE(MigrateV1ParameterFile(src, dst).ok());
  // A v2 file is not a migration input.
  std::string v2 = TestPath("migrate_v2_in.bin");
  ASSERT_TRUE(SaveParameters(MakeParams(7), v2).ok());
  EXPECT_FALSE(MigrateV1ParameterFile(v2, dst).ok());
}

TEST(SerializationFuzzTest, TruncationAtEvery64ByteBoundaryRejected) {
  std::string path = TestPath("truncate.bin");
  ASSERT_TRUE(SaveParameters(MakeParams(9), path).ok());
  std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 64u);
  std::vector<Tensor> scratch = MakeParams(10);
  for (size_t cut = 0; cut < bytes.size(); cut += 64) {
    WriteRaw(path, bytes.substr(0, cut));
    Status status = LoadParameters(path, scratch);
    EXPECT_FALSE(status.ok()) << "accepted truncation at " << cut;
  }
  // Off-by-one around the footer as well.
  WriteRaw(path, bytes.substr(0, bytes.size() - 1));
  EXPECT_FALSE(LoadParameters(path, scratch).ok());
}

TEST(SerializationFuzzTest, BitFlipsAnywhereRejected) {
  std::string path = TestPath("bitflip.bin");
  ASSERT_TRUE(SaveParameters(MakeParams(11), path).ok());
  std::string bytes = ReadAll(path);
  std::vector<Tensor> scratch = MakeParams(12);
  // Every header byte, then every 7th payload/footer byte.
  for (size_t pos = 0; pos < bytes.size(); pos += (pos < 16 ? 1 : 7)) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    WriteRaw(path, corrupted);
    Status status = LoadParameters(path, scratch);
    EXPECT_FALSE(status.ok()) << "accepted bit flip at " << pos;
  }
}

TEST(AdamStateTest, RoundTripContinuesBitIdentically) {
  // Train two Adams in lockstep for 3 steps, checkpoint one, keep stepping
  // both, and check the restored copy produces identical parameters.
  std::string path = TestPath("adam_state.bin");
  auto run_steps = [](Adam& adam, std::vector<Tensor>& params, int steps,
                      float grad_seed) {
    for (int s = 0; s < steps; ++s) {
      adam.ZeroGrad();
      for (size_t i = 0; i < params.size(); ++i) {
        auto& grad = params[i].impl()->grad;
        for (size_t j = 0; j < grad.size(); ++j) {
          grad[j] = grad_seed * (static_cast<float>(s + 1)) *
                    (static_cast<float>(j % 5) - 2.0f);
        }
      }
      adam.Step();
    }
  };
  std::vector<Tensor> params_a = MakeParams(30);
  std::vector<Tensor> params_b = MakeParams(30);
  Adam adam_a(params_a, 1e-2f);
  Adam adam_b(params_b, 1e-2f);
  run_steps(adam_a, params_a, 3, 0.3f);
  run_steps(adam_b, params_b, 3, 0.3f);
  ASSERT_TRUE(adam_a.SaveState(path).ok());

  // Fresh optimizer with fresh moments; restoring must resume exactly.
  std::vector<Tensor> params_c = MakeParams(30);
  for (size_t i = 0; i < params_c.size(); ++i) {
    params_c[i].mutable_data() = params_a[i].data();
  }
  Adam adam_c(params_c, 99.0f);  // lr overwritten by the checkpoint
  ASSERT_TRUE(adam_c.LoadState(path).ok());
  EXPECT_FLOAT_EQ(adam_c.lr(), 1e-2f);
  run_steps(adam_b, params_b, 2, -0.7f);
  run_steps(adam_c, params_c, 2, -0.7f);
  for (size_t i = 0; i < params_b.size(); ++i) {
    EXPECT_EQ(params_c[i].data(), params_b[i].data());
  }
}

TEST(AdamStateTest, CorruptionAndMismatchRejected) {
  std::string path = TestPath("adam_corrupt.bin");
  std::vector<Tensor> params = MakeParams(31);
  Adam adam(params, 1e-3f);
  ASSERT_TRUE(adam.SaveState(path).ok());
  std::string bytes = ReadAll(path);

  for (size_t cut = 0; cut < bytes.size(); cut += 64) {
    WriteRaw(path, bytes.substr(0, cut));
    EXPECT_FALSE(adam.LoadState(path).ok()) << "truncation at " << cut;
  }
  std::string corrupted = bytes;
  corrupted[bytes.size() / 2] ^= 0x01;
  WriteRaw(path, corrupted);
  EXPECT_FALSE(adam.LoadState(path).ok());

  // State written for a differently-shaped parameter list.
  std::vector<Tensor> other = {Tensor::Zeros({7}, /*requires_grad=*/true)};
  Adam mismatched(other, 1e-3f);
  WriteRaw(path, bytes);
  EXPECT_FALSE(mismatched.LoadState(path).ok());
}

TEST(RngStateTest, SerializeRestoreResumesStream) {
  Rng rng(77);
  (void)rng.Uniform(0.0, 1.0);
  std::string state = rng.SerializeState();
  std::vector<double> expect;
  for (int i = 0; i < 8; ++i) expect.push_back(rng.Uniform(0.0, 1.0));
  Rng restored(1);
  ASSERT_TRUE(restored.DeserializeState(state).ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(restored.Uniform(0.0, 1.0), expect[static_cast<size_t>(i)]);
  }
  EXPECT_FALSE(restored.DeserializeState("not an rng state").ok());
}

}  // namespace
}  // namespace garl::nn
