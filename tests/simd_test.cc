// SIMD-vs-scalar bit-equality: every op with a vectorized body must produce
// byte-identical values AND gradients with simd::SetEnabledForTest(false)
// and (true), across shapes that exercise full vector tiles, partial tails,
// and degenerate single-lane cases. This is the determinism contract that
// lets GARL_SIMD flip freely without perturbing the golden det payload.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"
#include "nn/simd.h"
#include "nn/tensor.h"

namespace garl::nn {
namespace {

// Shapes chosen to straddle the 4-lane vector width and the GEMM 16-column
// tile: 1x1 (all tail), 1x7 (sub-tile), 3x17 (tile + odd tail), 5x33,
// 17x9, 4x16 (exact tiles), 2x64.
const std::vector<std::vector<int64_t>> kShapes = {
    {1, 1}, {1, 7}, {3, 17}, {5, 33}, {17, 9}, {4, 16}, {2, 64}};

Tensor RandomTensor(const std::vector<int64_t>& shape, uint64_t seed,
                    bool requires_grad, double zero_fraction = 0.0) {
  int64_t numel = 1;
  for (int64_t d : shape) numel *= d;
  garl::Rng rng(seed);
  std::vector<float> values(static_cast<size_t>(numel));
  for (auto& v : values) {
    v = rng.NormalF();
    if (zero_fraction > 0.0 && rng.Uniform(0.0, 1.0) < zero_fraction) {
      v = 0.0f;  // exercises the GEMM zero-skip path
    }
  }
  return Tensor::FromVector(shape, std::move(values), requires_grad);
}

struct RunResult {
  std::vector<float> value;
  std::vector<std::vector<float>> grads;
};

// Runs `build` twice — SIMD off then on — and requires bitwise equality of
// the output values and every leaf gradient. `build` receives fresh leaf
// tensors each time (from `make_leaves`) and returns the op output.
void ExpectBitIdentical(
    const std::string& label,
    const std::function<std::vector<Tensor>()>& make_leaves,
    const std::function<Tensor(const std::vector<Tensor>&)>& build) {
  auto run = [&](bool simd_on) {
    simd::SetEnabledForTest(simd_on);
    std::vector<Tensor> leaves = make_leaves();
    Tensor out = build(leaves);
    RunResult r;
    r.value = out.data();
    Tensor loss = Sum(Mul(out, out));  // quadratic: nontrivial grads
    loss.Backward();
    for (const Tensor& leaf : leaves) {
      if (leaf.requires_grad()) r.grads.push_back(leaf.grad());
    }
    return r;
  };
  RunResult scalar = run(false);
  RunResult vec = run(true);
  ASSERT_EQ(scalar.value.size(), vec.value.size()) << label;
  for (size_t i = 0; i < scalar.value.size(); ++i) {
    // EXPECT_EQ on float compares bits for equal values; NaN would differ,
    // and none of these ops produce NaN on the generated inputs.
    ASSERT_EQ(scalar.value[i], vec.value[i])
        << label << " value lane " << i;
  }
  ASSERT_EQ(scalar.grads.size(), vec.grads.size()) << label;
  for (size_t g = 0; g < scalar.grads.size(); ++g) {
    ASSERT_EQ(scalar.grads[g], vec.grads[g]) << label << " grad " << g;
  }
}

class SimdKernelTest : public ::testing::Test {
 protected:
  // Each ExpectBitIdentical flips the runtime flag both ways; restore the
  // process's original (env-derived) setting so later tests in this binary
  // see the configuration they were launched with.
  void SetUp() override { original_ = simd::Enabled(); }
  void TearDown() override { simd::SetEnabledForTest(original_); }

 private:
  bool original_ = true;
};

TEST_F(SimdKernelTest, MatMulWithPlantedZeros) {
  for (const auto& shape : kShapes) {
    int64_t n = shape[0], k = shape[1];
    int64_t m = (k * 3) % 37 + 1;  // odd inner/output widths
    ExpectBitIdentical(
        "matmul " + std::to_string(n) + "x" + std::to_string(k) + "x" +
            std::to_string(m),
        [&] {
          return std::vector<Tensor>{
              RandomTensor({n, k}, 11 + n * 100 + k, true, 0.3),
              RandomTensor({k, m}, 23 + k * 100 + m, true)};
        },
        [](const std::vector<Tensor>& l) { return MatMul(l[0], l[1]); });
  }
}

TEST_F(SimdKernelTest, ElementwiseBinary) {
  for (const auto& shape : kShapes) {
    auto leaves = [&] {
      return std::vector<Tensor>{RandomTensor(shape, 31, true),
                                 RandomTensor(shape, 47, true)};
    };
    ExpectBitIdentical("add", leaves, [](const std::vector<Tensor>& l) {
      return Add(l[0], l[1]);
    });
    ExpectBitIdentical("sub", leaves, [](const std::vector<Tensor>& l) {
      return Sub(l[0], l[1]);
    });
    ExpectBitIdentical("mul", leaves, [](const std::vector<Tensor>& l) {
      return Mul(l[0], l[1]);
    });
    auto div_leaves = [&] {
      Tensor b = RandomTensor(shape, 53, true);
      // Shift denominators away from zero: |x|+0.5 keeps grads finite.
      std::vector<float> vals = b.data();
      for (auto& v : vals) v = (v < 0 ? -v : v) + 0.5f;
      return std::vector<Tensor>{
          RandomTensor(shape, 59, true),
          Tensor::FromVector(shape, std::move(vals), true)};
    };
    ExpectBitIdentical("div", div_leaves, [](const std::vector<Tensor>& l) {
      return Div(l[0], l[1]);
    });
  }
}

TEST_F(SimdKernelTest, ElementwiseUnaryAndActivations) {
  for (const auto& shape : kShapes) {
    auto leaves = [&] {
      return std::vector<Tensor>{RandomTensor(shape, 61, true)};
    };
    ExpectBitIdentical("neg", leaves, [](const std::vector<Tensor>& l) {
      return Neg(l[0]);
    });
    ExpectBitIdentical("square", leaves, [](const std::vector<Tensor>& l) {
      return Square(l[0]);
    });
    ExpectBitIdentical("relu", leaves, [](const std::vector<Tensor>& l) {
      return Relu(l[0]);
    });
    ExpectBitIdentical("clip", leaves, [](const std::vector<Tensor>& l) {
      return Clip(l[0], -0.7f, 0.9f);
    });
    ExpectBitIdentical("addscalar", leaves, [](const std::vector<Tensor>& l) {
      return AddScalar(l[0], 1.25f);
    });
    ExpectBitIdentical("mulscalar", leaves, [](const std::vector<Tensor>& l) {
      return MulScalar(l[0], -0.375f);
    });
  }
}

TEST_F(SimdKernelTest, RowAndScaleOps) {
  for (const auto& shape : kShapes) {
    int64_t n = shape[0], m = shape[1];
    ExpectBitIdentical(
        "addrowvector",
        [&] {
          return std::vector<Tensor>{RandomTensor({n, m}, 67, true),
                                     RandomTensor({m}, 71, true)};
        },
        [](const std::vector<Tensor>& l) { return AddRowVector(l[0], l[1]); });
    ExpectBitIdentical(
        "scalerows",
        [&] {
          return std::vector<Tensor>{RandomTensor({n, m}, 73, true),
                                     RandomTensor({n}, 79, true)};
        },
        [](const std::vector<Tensor>& l) { return ScaleRows(l[0], l[1]); });
  }
}

TEST_F(SimdKernelTest, SoftmaxFamily) {
  for (const auto& shape : kShapes) {
    auto leaves = [&] {
      return std::vector<Tensor>{RandomTensor(shape, 83, true)};
    };
    ExpectBitIdentical("softmax", leaves, [](const std::vector<Tensor>& l) {
      return Softmax(l[0]);
    });
    ExpectBitIdentical("logsoftmax", leaves, [](const std::vector<Tensor>& l) {
      return LogSoftmax(l[0]);
    });
  }
}

TEST_F(SimdKernelTest, Reductions) {
  for (const auto& shape : kShapes) {
    auto leaves = [&] {
      return std::vector<Tensor>{RandomTensor(shape, 89, true)};
    };
    ExpectBitIdentical("sumdim0", leaves, [](const std::vector<Tensor>& l) {
      return SumDim(l[0], 0);
    });
    ExpectBitIdentical("sumdim1", leaves, [](const std::vector<Tensor>& l) {
      return SumDim(l[0], 1);
    });
    ExpectBitIdentical("mean", leaves, [](const std::vector<Tensor>& l) {
      return Mean(l[0]);
    });
    ExpectBitIdentical("mse",
        [&] {
          return std::vector<Tensor>{RandomTensor(shape, 97, true),
                                     RandomTensor(shape, 101, false)};
        },
        [](const std::vector<Tensor>& l) { return MseLoss(l[0], l[1]); });
  }
}

TEST_F(SimdKernelTest, ShapeOps) {
  for (const auto& shape : kShapes) {
    int64_t n = shape[0], m = shape[1];
    ExpectBitIdentical(
        "transpose",
        [&] { return std::vector<Tensor>{RandomTensor({n, m}, 103, true)}; },
        [](const std::vector<Tensor>& l) { return Transpose(l[0]); });
    std::vector<int64_t> indices;
    for (int64_t i = 0; i < n + 2; ++i) indices.push_back((i * 5 + 1) % n);
    ExpectBitIdentical(
        "indexrows",
        [&] { return std::vector<Tensor>{RandomTensor({n, m}, 107, true)}; },
        [&](const std::vector<Tensor>& l) { return IndexRows(l[0], indices); });
    ExpectBitIdentical(
        "concat",
        [&] {
          return std::vector<Tensor>{RandomTensor({n, m}, 109, true),
                                     RandomTensor({n + 1, m}, 113, true)};
        },
        [](const std::vector<Tensor>& l) {
          return Concat({l[0], l[1]}, 0);
        });
  }
}

TEST_F(SimdKernelTest, Conv2dStrides) {
  for (int64_t stride : {int64_t{1}, int64_t{2}}) {
    for (int64_t pad : {int64_t{0}, int64_t{1}}) {
      ExpectBitIdentical(
          "conv2d s" + std::to_string(stride) + " p" + std::to_string(pad),
          [&] {
            return std::vector<Tensor>{
                RandomTensor({2, 3, 9, 7}, 127, true),  // N,C,H,W odd dims
                RandomTensor({4, 3, 3, 3}, 131, true),  // F,C,kh,kw
                RandomTensor({4}, 137, true)};
          },
          [&](const std::vector<Tensor>& l) {
            return Conv2d(l[0], l[1], l[2], stride, pad);
          });
    }
  }
}

TEST_F(SimdKernelTest, NormAndDot) {
  for (int64_t n : {1, 7, 16, 33}) {
    ExpectBitIdentical(
        "norm",
        [&] { return std::vector<Tensor>{RandomTensor({n}, 139, true)}; },
        [](const std::vector<Tensor>& l) { return Norm(l[0]); });
    ExpectBitIdentical(
        "dot",
        [&] {
          return std::vector<Tensor>{RandomTensor({n}, 149, true),
                                     RandomTensor({n}, 151, true)};
        },
        [](const std::vector<Tensor>& l) { return Dot(l[0], l[1]); });
  }
}

}  // namespace
}  // namespace garl::nn
