// Cross-module integration and property tests: full train/evaluate cycles
// through the public API, conservation laws of the simulator under random
// play, and checkpoint round-trips of complete policies.

#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/registry.h"
#include "baselines/runner.h"
#include "core/garl_extractor.h"
#include "env/campus_factory.h"
#include "env/world.h"
#include "nn/serialization.h"
#include "rl/evaluator.h"
#include "rl/feature_policy.h"
#include "rl/ippo_trainer.h"
#include "rl/uav_controller.h"

namespace garl {
namespace {

env::CampusSpec CrossCampus() {
  env::CampusSpec campus;
  campus.name = "cross";
  campus.width = 600;
  campus.height = 600;
  campus.roads.push_back({{0, 300}, {600, 300}});
  campus.roads.push_back({{300, 0}, {300, 600}});
  campus.sensors.push_back({{100, 310}, 1000.0});
  campus.sensors.push_back({{500, 290}, 1100.0});
  campus.sensors.push_back({{310, 100}, 1200.0});
  campus.sensors.push_back({{290, 500}, 900.0});
  return campus;
}

// Random play over many configurations must keep the simulator's books
// balanced: data never negative or created, energy accounting exact,
// metrics in range.
struct WorldConfig {
  int64_t ugvs;
  int64_t uavs;
  uint64_t seed;
};

class WorldInvariantsTest : public ::testing::TestWithParam<WorldConfig> {};

TEST_P(WorldInvariantsTest, RandomPlayKeepsInvariants) {
  WorldConfig config = GetParam();
  env::WorldParams params;
  params.num_ugvs = config.ugvs;
  params.uavs_per_ugv = config.uavs;
  params.horizon = 30;
  params.release_slots = 3;
  env::World world(CrossCampus(), params);
  Rng rng(config.seed);

  double total_initial = 0;
  for (const auto& s : world.sensors()) total_initial += s.initial_mb;

  double reward_sum = 0.0;
  while (!world.Done()) {
    std::vector<env::UgvAction> ugv_actions(
        static_cast<size_t>(world.num_ugvs()));
    for (int64_t u = 0; u < world.num_ugvs(); ++u) {
      ugv_actions[static_cast<size_t>(u)].release = rng.Bernoulli(0.4);
      ugv_actions[static_cast<size_t>(u)].target_stop =
          rng.UniformInt(0, world.stops().num_stops() - 1);
    }
    std::vector<env::UavAction> uav_actions(
        static_cast<size_t>(world.num_uavs()));
    for (int64_t v = 0; v < world.num_uavs(); ++v) {
      uav_actions[static_cast<size_t>(v)] = {rng.Uniform(-120, 120),
                                             rng.Uniform(-120, 120)};
    }
    env::StepResult step = world.Step(ugv_actions, uav_actions);
    for (double r : step.ugv_rewards) reward_sum += r;

    // Per-slot invariants.
    double remaining = 0;
    for (const auto& s : world.sensors()) {
      ASSERT_GE(s.remaining_mb, 0.0);
      ASSERT_LE(s.remaining_mb, s.initial_mb + 1e-6);
      remaining += s.remaining_mb;
    }
    ASSERT_LE(remaining, total_initial + 1e-6);
    for (const auto& uav : world.uavs()) {
      ASSERT_GE(uav.energy_kj, -1e-9);
      ASSERT_LE(uav.energy_kj, params.uav_energy_kj + 1e-9);
      // UAVs never end a slot inside a building.
      for (const auto& b : world.campus().buildings) {
        ASSERT_FALSE(b.Contains(uav.position));
      }
    }
  }
  // Total UGV reward equals the data removed from sensors (Eq. 12).
  double collected = 0;
  for (const auto& s : world.sensors()) {
    collected += s.initial_mb - s.remaining_mb;
  }
  EXPECT_NEAR(reward_sum, collected, 1e-3);

  env::EpisodeMetrics m = world.Metrics();
  EXPECT_GE(m.data_collection_ratio, 0.0);
  EXPECT_LE(m.data_collection_ratio, 1.0);
  EXPECT_GE(m.fairness, 0.0);
  EXPECT_LE(m.fairness, 1.0 + 1e-9);
  EXPECT_GE(m.cooperation_factor, 0.0);
  EXPECT_LE(m.cooperation_factor, 1.0);
  EXPECT_GE(m.energy_ratio, 0.0);
  EXPECT_LE(m.energy_ratio, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WorldInvariantsTest,
    ::testing::Values(WorldConfig{1, 1, 1}, WorldConfig{2, 1, 2},
                      WorldConfig{2, 2, 3}, WorldConfig{3, 2, 4},
                      WorldConfig{4, 3, 5}),
    [](const ::testing::TestParamInfo<WorldConfig>& info) {
      return "U" + std::to_string(info.param.ugvs) + "V" +
             std::to_string(info.param.uavs) + "s" +
             std::to_string(info.param.seed);
    });

TEST(IntegrationTest, TrainedGarlBeatsRandomOnAverage) {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 40;
  env::World world(CrossCampus(), params);

  baselines::RunOptions garl_options;
  garl_options.train_iterations = 2;
  garl_options.eval_episodes = 2;
  garl_options.seed = 7;
  double garl = baselines::TrainAndEvaluate(world, "GARL", garl_options)
                    .metrics.efficiency;

  baselines::RunOptions random_options;
  random_options.train_iterations = 0;
  random_options.eval_episodes = 2;
  random_options.seed = 7;
  double random = baselines::TrainAndEvaluate(world, "Random",
                                              random_options)
                      .metrics.efficiency;
  EXPECT_GT(garl, random);
}

TEST(IntegrationTest, DeterministicGivenSeeds) {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 20;
  env::World world(CrossCampus(), params);
  baselines::RunOptions options;
  options.train_iterations = 1;
  options.seed = 13;
  double a = baselines::TrainAndEvaluate(world, "GARL", options)
                 .metrics.efficiency;
  double b = baselines::TrainAndEvaluate(world, "GARL", options)
                 .metrics.efficiency;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(IntegrationTest, GarlPolicyCheckpointRoundTrip) {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 20;
  env::World world(CrossCampus(), params);
  rl::EnvContext context = rl::MakeEnvContext(world);
  Rng rng(3);
  auto policy = std::move(baselines::MakeUgvPolicy(
                              "GARL", context, baselines::MethodOptions(),
                              rng))
                    .value();
  std::string path = "/tmp/garl_integration_ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(policy->Parameters(), path).ok());

  Rng rng2(99);
  auto restored = std::move(baselines::MakeUgvPolicy(
                                "GARL", context, baselines::MethodOptions(),
                                rng2))
                      .value();
  std::vector<nn::Tensor> restored_params = restored->Parameters();
  ASSERT_TRUE(nn::LoadParameters(path, restored_params).ok());

  // Identical parameters -> identical outputs.
  std::vector<env::UgvObservation> obs = {world.ObserveUgv(0),
                                          world.ObserveUgv(1)};
  auto out_a = policy->Forward(obs);
  auto out_b = restored->Forward(obs);
  for (size_t u = 0; u < out_a.size(); ++u) {
    EXPECT_EQ(out_a[u].target_logits.data(), out_b[u].target_logits.data());
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, EvaluatorWorksWithAllControllers) {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 20;
  env::World world(CrossCampus(), params);
  rl::EnvContext context = rl::MakeEnvContext(world);
  Rng rng(5);
  auto policy = std::move(baselines::MakeUgvPolicy(
                              "GAT", context, baselines::MethodOptions(),
                              rng))
                    .value();
  rl::EvalOptions options;
  options.episodes = 1;
  rl::GreedyUavController greedy;
  rl::RandomUavController random;
  env::EpisodeMetrics with_greedy =
      rl::EvaluatePolicy(world, *policy, greedy, options);
  env::EpisodeMetrics with_random =
      rl::EvaluatePolicy(world, *policy, random, options);
  // The purposeful controller should collect at least as much data.
  EXPECT_GE(with_greedy.data_collection_ratio,
            with_random.data_collection_ratio);
}

TEST(IntegrationTest, LayerSweepConfigsAllTrain) {
  // Table II machinery: every (L^MC, L^E) in the sweep grid must train.
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 16;
  env::World world(CrossCampus(), params);
  rl::EnvContext context = rl::MakeEnvContext(world);
  for (int64_t layers : {1, 3, 5}) {
    Rng rng(7);
    baselines::MethodOptions method;
    method.mc_layers = layers;
    method.e_layers = layers;
    auto policy = std::move(
        baselines::MakeUgvPolicy("GARL", context, method, rng)).value();
    rl::TrainConfig config;
    config.iterations = 1;
    config.epochs = 1;
    config.seed = 2;
    rl::IppoTrainer trainer(&world, policy.get(), nullptr, config);
    rl::IterationStats stats = trainer.RunIteration();
    EXPECT_TRUE(std::isfinite(stats.policy_loss)) << layers;
  }
}

}  // namespace
}  // namespace garl
