// Edge-case behaviour of the simulator and policy heads that the main
// suites do not exercise: degenerate fleets, unreachable targets, drained
// worlds, and prior toggles.

#include <cmath>

#include <gtest/gtest.h>

#include "env/campus_factory.h"
#include "env/world.h"
#include "nn/ops.h"
#include "rl/feature_policy.h"
#include "rl/rollout.h"

namespace garl {
namespace {

env::CampusSpec LineCampus() {
  env::CampusSpec campus;
  campus.name = "line";
  campus.width = 500;
  campus.height = 100;
  campus.roads.push_back({{0, 50}, {500, 50}});
  campus.sensors.push_back({{100, 60}, 800.0});
  campus.sensors.push_back({{400, 40}, 800.0});
  return campus;
}

TEST(WorldEdgeTest, SingleUgvSingleUavWorks) {
  env::WorldParams params;
  params.num_ugvs = 1;
  params.uavs_per_ugv = 1;
  params.horizon = 10;
  env::World world(LineCampus(), params);
  std::vector<env::UgvAction> actions = {{true, -1}};
  std::vector<env::UavAction> uav = {{50, 0}};
  while (!world.Done()) world.Step(actions, uav);
  EXPECT_EQ(world.slot(), 10);
}

TEST(WorldEdgeTest, TargetOwnStopIsNoOpMove) {
  env::WorldParams params;
  params.num_ugvs = 1;
  params.uavs_per_ugv = 1;
  params.horizon = 5;
  env::World world(LineCampus(), params);
  int64_t here = world.ugvs()[0].current_stop;
  std::vector<env::UgvAction> actions = {{false, here}};
  std::vector<env::UavAction> uav(1);
  world.Step(actions, uav);
  EXPECT_EQ(world.ugvs()[0].current_stop, here);
  EXPECT_DOUBLE_EQ(world.ugvs()[0].distance_traveled, 0.0);
}

TEST(WorldEdgeTest, NegativeTargetIsIgnored) {
  env::WorldParams params;
  params.num_ugvs = 1;
  params.uavs_per_ugv = 1;
  params.horizon = 5;
  env::World world(LineCampus(), params);
  int64_t here = world.ugvs()[0].current_stop;
  std::vector<env::UgvAction> actions = {{false, -1}};
  std::vector<env::UavAction> uav(1);
  world.Step(actions, uav);
  EXPECT_EQ(world.ugvs()[0].current_stop, here);
}

TEST(WorldEdgeTest, FarTargetTakesMultipleSlots) {
  env::WorldParams params;
  params.num_ugvs = 1;
  params.uavs_per_ugv = 1;
  params.horizon = 10;
  params.ugv_max_dist = 120.0;  // just over one 100 m hop per slot
  env::World world(LineCampus(), params);
  int64_t far = world.stops().NearestStop({500, 50});
  std::vector<env::UgvAction> actions = {{false, far}};
  std::vector<env::UavAction> uav(1);
  world.Step(actions, uav);
  EXPECT_NE(world.ugvs()[0].current_stop, far);
  EXPECT_GT(world.ugvs()[0].target_stop, -1);  // still en route
  for (int t = 0; t < 4; ++t) world.Step(actions, uav);
  EXPECT_EQ(world.ugvs()[0].current_stop, far);
}

TEST(WorldEdgeTest, FullyDrainedWorldMetrics) {
  env::WorldParams params;
  params.num_ugvs = 1;
  params.uavs_per_ugv = 1;
  params.horizon = 40;
  params.release_slots = 10;
  env::World world(LineCampus(), params);
  // Park a UAV over each sensor in turn by hovering.
  std::vector<env::UgvAction> release = {{true, -1}};
  std::vector<env::UavAction> west = {{-100, 0}};
  std::vector<env::UavAction> east = {{100, 0}};
  int64_t west_stop = world.stops().NearestStop({100, 50});
  int64_t east_stop = world.stops().NearestStop({400, 50});
  std::vector<env::UgvAction> go_west = {{false, west_stop}};
  std::vector<env::UgvAction> go_east = {{false, east_stop}};
  world.Step(go_west, west);
  for (int t = 0; t < 12 && !world.Done(); ++t) world.Step(release, west);
  world.Step(go_east, east);
  while (!world.Done()) world.Step(release, east);
  env::EpisodeMetrics m = world.Metrics();
  EXPECT_GT(m.data_collection_ratio, 0.85);
  // Near-uniform drain -> fairness near 1.
  EXPECT_GT(m.fairness, 0.85);
}

TEST(WorldEdgeTest, ObservationSeenSlotTracksRecency) {
  env::WorldParams params;
  params.num_ugvs = 1;
  params.uavs_per_ugv = 1;
  params.horizon = 10;
  env::World world(LineCampus(), params);
  std::vector<env::UgvAction> stay = {
      {false, world.ugvs()[0].current_stop}};
  std::vector<env::UavAction> uav(1);
  world.Step(stay, uav);
  world.Step(stay, uav);
  env::UgvObservation obs = world.ObserveUgv(0);
  int64_t here = obs.current_stop;
  // The stop under the UGV was refreshed this slot.
  EXPECT_EQ(obs.stop_seen_slot[static_cast<size_t>(here)],
            world.slot() - 1);
  // A far stop has never been approached.
  int64_t far = world.stops().NearestStop({500, 50});
  EXPECT_EQ(obs.stop_seen_slot[static_cast<size_t>(far)], -1);
}

// --- Degraded-coalition edge cases (fault injection, graceful paths) -------

env::WorldParams TwoUavParams() {
  env::WorldParams params;
  params.num_ugvs = 1;
  params.uavs_per_ugv = 2;
  params.horizon = 10;
  params.release_slots = 2;
  return params;
}

TEST(WorldFaultTest, ReleaseWithZeroSurvivingUavsIsAnEmptyWindow) {
  env::World world(LineCampus(), TwoUavParams());
  env::SlotFaults faults;
  faults.uav_dropouts = {0, 1};  // the whole squad fails before the release
  world.SetSlotFaults(std::move(faults));
  std::vector<env::UgvAction> release = {{true, -1}};
  std::vector<env::UavAction> uav(2);
  world.Step(release, uav);
  // Nobody lifted: no release credit, no airborne UAV, the window still
  // counts down and the UGV waits it out without crashing.
  EXPECT_EQ(world.total_releases(), 0);
  EXPECT_FALSE(world.UavAirborne(0));
  EXPECT_FALSE(world.UavAirborne(1));
  EXPECT_FALSE(world.UgvNeedsAction(0));  // mid-window
  while (!world.Done()) world.Step(release, uav);
  env::EpisodeMetrics m = world.Metrics();
  EXPECT_TRUE(std::isfinite(m.efficiency));
  EXPECT_DOUBLE_EQ(m.data_collection_ratio, 0.0);
}

TEST(WorldFaultTest, SurvivorAbsorbsFailedPeersCollectionShare) {
  env::World world(LineCampus(), TwoUavParams());
  env::World clean(LineCampus(), TwoUavParams());
  // Hover both worlds' UAVs over the west sensor; in the faulty world UAV 1
  // drops out first, so UAV 0 flies with a 2x re-dispatch boost.
  int64_t west_stop = world.stops().NearestStop({100, 50});
  std::vector<env::UgvAction> go_west = {{false, west_stop}};
  std::vector<env::UgvAction> release = {{true, -1}};
  std::vector<env::UavAction> hover = {{0, 10}, {0, -10}};
  world.Step(go_west, hover);
  clean.Step(go_west, hover);

  env::SlotFaults faults;
  faults.uav_dropouts = {1};
  world.SetSlotFaults(std::move(faults));
  world.Step(release, hover);
  clean.Step(release, hover);
  // One boosted survivor collects as much as the clean two-UAV squad whose
  // members sit in range of the same single sensor.
  EXPECT_TRUE(world.uavs()[1].failed);
  EXPECT_FALSE(world.UavAirborne(1));
  EXPECT_GT(world.uavs()[0].flight_collected_mb, 0.0);
  EXPECT_DOUBLE_EQ(world.uavs()[0].flight_collected_mb,
                   clean.uavs()[0].flight_collected_mb +
                       clean.uavs()[1].flight_collected_mb);
}

TEST(WorldFaultTest, AllSensorReadsFailingDrainsNothingAndStaysFinite) {
  env::World world(LineCampus(), TwoUavParams());
  std::vector<env::UgvAction> release = {{true, -1}};
  std::vector<env::UavAction> hover = {{0, 5}, {0, -5}};
  while (!world.Done()) {
    env::SlotFaults faults;
    faults.sensor_gain.assign(world.sensors().size(), 0.0);
    world.SetSlotFaults(std::move(faults));
    world.Step(release, hover);
  }
  for (const env::SensorState& sensor : world.sensors()) {
    EXPECT_DOUBLE_EQ(sensor.remaining_mb, sensor.initial_mb);
  }
  env::EpisodeMetrics m = world.Metrics();
  EXPECT_TRUE(std::isfinite(m.fairness));
  EXPECT_TRUE(std::isfinite(m.efficiency));
  EXPECT_DOUBLE_EQ(m.data_collection_ratio, 0.0);
}

TEST(WorldFaultTest, StalledUgvFreezesWithoutConsumingAnAction) {
  env::WorldParams params = TwoUavParams();
  params.num_ugvs = 2;
  env::World world(LineCampus(), params);
  int64_t far = world.stops().NearestStop({500, 50});
  env::SlotFaults faults;
  faults.ugv_stalled = {1, 0};  // UGV 0 stalled, UGV 1 healthy
  world.SetSlotFaults(std::move(faults));
  EXPECT_FALSE(world.UgvNeedsAction(0));
  EXPECT_TRUE(world.UgvNeedsAction(1));
  std::vector<env::UgvAction> actions = {{false, far}, {false, far}};
  std::vector<env::UavAction> uav(4);
  world.Step(actions, uav);
  // The stalled UGV ignored its action entirely; the healthy one moved.
  EXPECT_DOUBLE_EQ(world.ugvs()[0].distance_traveled, 0.0);
  EXPECT_GT(world.ugvs()[1].distance_traveled, 0.0);
  // Faults are per-slot: next slot the stall is gone.
  EXPECT_TRUE(world.UgvNeedsAction(0));
}

TEST(WorldFaultTest, CommMaskSurfacesOnlyThroughObservationRows) {
  env::WorldParams params = TwoUavParams();
  params.num_ugvs = 2;
  env::World world(LineCampus(), params);
  env::UgvObservation before = world.ObserveUgv(0);
  EXPECT_TRUE(before.comm_blocked.empty());  // fault-free: empty, not zeros

  env::SlotFaults faults;
  faults.comm_blocked = {0, 1, 1, 0};  // link 0<->1 blacked out
  world.SetSlotFaults(std::move(faults));
  env::UgvObservation obs0 = world.ObserveUgv(0);
  env::UgvObservation obs1 = world.ObserveUgv(1);
  ASSERT_EQ(obs0.comm_blocked.size(), 2u);
  EXPECT_EQ(obs0.comm_blocked[1], 1);
  EXPECT_EQ(obs1.comm_blocked[0], 1);
  // The mask never touches dynamics: stepping is identical to a clean step.
  std::vector<env::UgvAction> stay = {{false, -1}, {false, -1}};
  std::vector<env::UavAction> uav(4);
  world.Step(stay, uav);
  EXPECT_TRUE(world.ObserveUgv(0).comm_blocked.empty());  // cleared
}

TEST(FeaturePolicyEdgeTest, ZeroPriorScalesDisableBiases) {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 5;
  env::World world(LineCampus(), params);
  rl::EnvContext context = rl::MakeEnvContext(world);
  Rng rng(3);

  // A null extractor exposing raw zeros: head outputs become pure priors.
  class ZeroExtractor : public rl::UgvFeatureExtractor {
   public:
    std::vector<nn::Tensor> Extract(
        const std::vector<env::UgvObservation>& observations) override {
      return std::vector<nn::Tensor>(observations.size(),
                                     nn::Tensor::Zeros({4}));
    }
    int64_t feature_dim() const override { return 4; }
    std::string name() const override { return "zero"; }
    std::vector<nn::Tensor> Parameters() const override { return {}; }
  };

  rl::FeaturePolicyOptions options;
  options.direction_prior_scale = 0.0f;
  options.release_prior_scale = 0.0f;
  rl::FeatureUgvPolicy policy(std::make_unique<ZeroExtractor>(), context,
                              options, rng);
  std::vector<env::UgvObservation> obs = {world.ObserveUgv(0),
                                          world.ObserveUgv(1)};
  auto outputs = policy.Forward(obs);
  // With zero features and no priors, both agents' logits coincide.
  EXPECT_EQ(outputs[0].target_logits.data(),
            outputs[1].target_logits.data());

  // Turning the direction prior on must separate them.
  rl::FeaturePolicyOptions with_direction;
  with_direction.release_prior_scale = 0.0f;
  Rng rng2(3);
  rl::FeatureUgvPolicy policy2(std::make_unique<ZeroExtractor>(), context,
                               with_direction, rng2);
  auto outputs2 = policy2.Forward(obs);
  EXPECT_NE(outputs2[0].target_logits.data(),
            outputs2[1].target_logits.data());
}

TEST(SampleUgvActionEdgeTest, PeakedLogitsSampleDeterministically) {
  rl::UgvPolicyOutput out;
  out.release_logits = nn::Tensor::FromVector({2}, {50.0f, -50.0f});
  out.target_logits = nn::Tensor::FromVector({3}, {-40.0f, 60.0f, -40.0f});
  out.value = nn::Tensor::Scalar(0.0f);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    rl::SampledUgvAction a = rl::SampleUgvAction(out, rng, false);
    EXPECT_FALSE(a.action.release);
    EXPECT_EQ(a.action.target_stop, 1);
  }
}

}  // namespace
}  // namespace garl
