#include <gtest/gtest.h>

#include <cmath>

#include "rl/gae.h"

namespace garl::rl {
namespace {

TEST(GaeTest, SingleStepIsTdError) {
  GaeResult r = ComputeGae({1.0f}, {0.5f}, 0.9f, 0.95f);
  // delta = r + gamma*0 - v = 0.5.
  EXPECT_NEAR(r.advantages[0], 0.5f, 1e-6f);
  EXPECT_NEAR(r.returns[0], 1.0f, 1e-6f);
}

TEST(GaeTest, ZeroLambdaIsOneStepTd) {
  std::vector<float> rewards = {1, 1, 1};
  std::vector<float> values = {0.5f, 0.5f, 0.5f};
  GaeResult r = ComputeGae(rewards, values, 0.9f, 0.0f);
  // Each advantage = r + gamma*v' - v.
  EXPECT_NEAR(r.advantages[0], 1 + 0.9f * 0.5f - 0.5f, 1e-6f);
  EXPECT_NEAR(r.advantages[2], 1 - 0.5f, 1e-6f);
}

TEST(GaeTest, LambdaOneIsMonteCarlo) {
  std::vector<float> rewards = {1, 2, 3};
  std::vector<float> values = {0, 0, 0};
  GaeResult r = ComputeGae(rewards, values, 0.5f, 1.0f);
  // Discounted returns: 3; 2+0.5*3=3.5; 1+0.5*3.5=2.75.
  EXPECT_NEAR(r.returns[2], 3.0f, 1e-6f);
  EXPECT_NEAR(r.returns[1], 3.5f, 1e-6f);
  EXPECT_NEAR(r.returns[0], 2.75f, 1e-6f);
}

TEST(GaeTest, ReturnsEqualAdvantagePlusValue) {
  std::vector<float> rewards = {0.2f, -0.5f, 1.0f, 0.0f};
  std::vector<float> values = {0.1f, 0.3f, -0.2f, 0.4f};
  GaeResult r = ComputeGae(rewards, values, 0.99f, 0.9f);
  for (size_t i = 0; i < rewards.size(); ++i) {
    EXPECT_NEAR(r.returns[i], r.advantages[i] + values[i], 1e-6f);
  }
}

TEST(GaeTest, EmptyInput) {
  GaeResult r = ComputeGae({}, {}, 0.9f, 0.9f);
  EXPECT_TRUE(r.advantages.empty());
  EXPECT_TRUE(r.returns.empty());
}

TEST(GaeTest, PerfectCriticGivesZeroAdvantageAtLambdaOne) {
  // values == discounted returns -> advantages ~ 0.
  float gamma = 0.5f;
  std::vector<float> rewards = {1, 1, 1};
  std::vector<float> values = {1.75f, 1.5f, 1.0f};
  GaeResult r = ComputeGae(rewards, values, gamma, 1.0f);
  for (float a : r.advantages) EXPECT_NEAR(a, 0.0f, 1e-5f);
}

TEST(NormalizeAdvantagesTest, ZeroMeanUnitVar) {
  std::vector<float> a = {1, 2, 3, 4, 5};
  NormalizeAdvantages(a);
  float mean = 0;
  for (float v : a) mean += v;
  mean /= a.size();
  EXPECT_NEAR(mean, 0.0f, 1e-5f);
  float var = 0;
  for (float v : a) var += v * v;
  var /= a.size();
  EXPECT_NEAR(var, 1.0f, 1e-4f);
}

TEST(NormalizeAdvantagesTest, ShortInputsNoop) {
  std::vector<float> one = {5.0f};
  NormalizeAdvantages(one);
  EXPECT_FLOAT_EQ(one[0], 5.0f);
  std::vector<float> empty;
  NormalizeAdvantages(empty);
  EXPECT_TRUE(empty.empty());
}

}  // namespace
}  // namespace garl::rl
