#include <gtest/gtest.h>

#include <memory>

#include "core/garl_extractor.h"
#include "core/uav_policy.h"
#include "env/campus_factory.h"
#include "env/world.h"
#include "nn/distributions.h"
#include "nn/ops.h"
#include "rl/ippo_trainer.h"

namespace garl::core {
namespace {

env::CampusSpec TinyCampus() {
  env::CampusSpec campus;
  campus.name = "tiny";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  campus.sensors.push_back({{260, 190}, 1200.0});
  campus.sensors.push_back({{200, 320}, 900.0});
  return campus;
}

env::WorldParams TinyParams() {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 16;
  params.release_slots = 2;
  return params;
}

struct Fixture {
  Fixture(bool use_mc, bool use_e)
      : world(TinyCampus(), TinyParams()),
        context(rl::MakeEnvContext(world)),
        rng(7) {
    GarlConfig config;
    config.use_mc = use_mc;
    config.use_e = use_e;
    config.mc_gcn.layers = 2;
    config.e_comm.layers = 2;
    extractor = std::make_unique<GarlExtractor>(context, config, rng);
  }
  env::World world;
  rl::EnvContext context;
  Rng rng;
  std::unique_ptr<GarlExtractor> extractor;

  std::vector<env::UgvObservation> Observe() {
    return {world.ObserveUgv(0), world.ObserveUgv(1)};
  }
};

class GarlVariantTest
    : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(GarlVariantTest, ExtractShapesAndFiniteness) {
  auto [use_mc, use_e] = GetParam();
  Fixture f(use_mc, use_e);
  auto features = f.extractor->Extract(f.Observe());
  ASSERT_EQ(features.size(), 2u);
  for (const auto& feature : features) {
    EXPECT_EQ(feature.shape(),
              (std::vector<int64_t>{f.extractor->feature_dim()}));
    for (float v : feature.data()) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_P(GarlVariantTest, PriorsMatchObservations) {
  auto [use_mc, use_e] = GetParam();
  Fixture f(use_mc, use_e);
  auto obs = f.Observe();
  f.extractor->Extract(obs);
  rl::UgvPriors priors = f.extractor->Priors(obs);
  ASSERT_EQ(priors.target.size(), 2u);
  EXPECT_EQ(priors.target[0].shape(),
            (std::vector<int64_t>{f.context.num_stops}));
  if (use_mc) {
    ASSERT_EQ(priors.release.size(), 2u);
    EXPECT_EQ(priors.release[0].shape(), (std::vector<int64_t>{2}));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, GarlVariantTest,
    ::testing::Values(std::pair<bool, bool>{true, true},
                      std::pair<bool, bool>{false, true},
                      std::pair<bool, bool>{true, false},
                      std::pair<bool, bool>{false, false}),
    [](const ::testing::TestParamInfo<std::pair<bool, bool>>& info) {
      std::string name = info.param.first ? "mc" : "nomc";
      name += info.param.second ? "_e" : "_noe";
      return name;
    });

TEST(GarlExtractorTest, NamesFollowAblation) {
  Fixture full(true, true), no_mc(false, true), no_e(true, false),
      none(false, false);
  EXPECT_EQ(full.extractor->name(), "GARL");
  EXPECT_EQ(no_mc.extractor->name(), "GARL w/o MC");
  EXPECT_EQ(no_e.extractor->name(), "GARL w/o E");
  EXPECT_EQ(none.extractor->name(), "GARL w/o MC, E");
}

TEST(GarlExtractorTest, MultiCenterPriorAvoidsCrowding) {
  // Both UGVs start at the same stop: the release prior must be negative
  // (peer within one hop -> competition).
  Fixture f(true, true);
  auto obs = f.Observe();
  rl::UgvPriors priors = f.extractor->Priors(obs);
  ASSERT_EQ(priors.release.size(), 2u);
  EXPECT_LT(priors.release[0].data()[1], 0.0f);
  // And the target prior is depressed around the other UGV's position,
  // compared to the single-center variant.
  Fixture single(false, true);
  rl::UgvPriors single_priors = single.extractor->Priors(obs);
  int64_t stop = obs[0].ugv_stops[1];
  EXPECT_LT(priors.target[0].data()[stop],
            single_priors.target[0].data()[stop] + 1e-6f);
}

TEST(GarlExtractorTest, TrainsEndToEndWithIppo) {
  Fixture f(true, true);
  rl::FeaturePolicyOptions options;
  auto policy = std::make_unique<rl::FeatureUgvPolicy>(
      std::move(f.extractor), f.context, options, f.rng);
  rl::TrainConfig config;
  config.iterations = 1;
  config.epochs = 1;
  config.seed = 3;
  rl::IppoTrainer trainer(&f.world, policy.get(), nullptr, config);
  rl::IterationStats stats = trainer.RunIteration();
  EXPECT_TRUE(std::isfinite(stats.policy_loss));
  EXPECT_TRUE(std::isfinite(stats.value_loss));
}

TEST(UavCnnPolicyTest, OutputShapesAndBounds) {
  Rng rng(5);
  UavPolicyConfig config;
  UavCnnPolicy policy(config, rng);
  env::World world(TinyCampus(), TinyParams());
  std::vector<env::UgvAction> release(2, {true, -1});
  std::vector<env::UavAction> idle(2);
  world.Step(release, idle);
  rl::UavPolicyOutput out = policy.Forward(world.ObserveUav(0));
  EXPECT_EQ(out.mean.shape(), (std::vector<int64_t>{2}));
  EXPECT_EQ(out.log_std.shape(), (std::vector<int64_t>{2}));
  EXPECT_EQ(out.value.numel(), 1);
  for (float v : out.mean.data()) {
    EXPECT_LE(std::fabs(v), config.max_displacement);
  }
}

TEST(UavCnnPolicyTest, GradientsReachConvs) {
  Rng rng(6);
  UavCnnPolicy policy(UavPolicyConfig{}, rng);
  env::World world(TinyCampus(), TinyParams());
  std::vector<env::UgvAction> release(2, {true, -1});
  std::vector<env::UavAction> idle(2);
  world.Step(release, idle);
  rl::UavPolicyOutput out = policy.Forward(world.ObserveUav(0));
  nn::DiagGaussian dist(out.mean, out.log_std);
  nn::Tensor loss = nn::Add(nn::Neg(dist.LogProb({10.0f, -5.0f})),
                            nn::Square(out.value));
  loss.Backward();
  int with_grad = 0;
  for (const nn::Tensor& p : policy.Parameters()) {
    float norm = 0.0f;
    for (float g : p.grad()) norm += g * g;
    if (norm > 0.0f) ++with_grad;
  }
  EXPECT_GE(with_grad, static_cast<int>(policy.Parameters().size()) - 1);
}

TEST(UavCnnPolicyTest, TrainsWithIppo) {
  env::World world(TinyCampus(), TinyParams());
  rl::EnvContext context = rl::MakeEnvContext(world);
  Rng rng(9);
  GarlConfig gconfig;
  gconfig.mc_gcn.layers = 1;
  gconfig.e_comm.layers = 1;
  auto policy = std::make_unique<rl::FeatureUgvPolicy>(
      std::make_unique<GarlExtractor>(context, gconfig, rng), context,
      rl::FeaturePolicyOptions{}, rng);
  auto uav_policy = std::make_unique<UavCnnPolicy>(UavPolicyConfig{}, rng);
  rl::TrainConfig config;
  config.iterations = 1;
  config.epochs = 1;
  config.train_uav = true;
  config.seed = 21;
  rl::IppoTrainer trainer(&world, policy.get(), uav_policy.get(), config);
  rl::IterationStats stats = trainer.RunIteration();
  EXPECT_TRUE(std::isfinite(stats.uav_episode_reward));
}

}  // namespace
}  // namespace garl::core
