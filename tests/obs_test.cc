// Tests for the observability layer (src/obs/): histogram/quantile math and
// shard merges, registry determinism under concurrent updates, trace span
// nesting and per-thread aggregation, and the run-log record format's
// byte-stability and round-trip.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_log.h"
#include "obs/trace.h"

namespace garl::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // bucket 0
  h.Observe(1.0);  // bucket 0 (v <= b_i)
  h.Observe(1.5);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(9.0);  // overflow
  EXPECT_EQ(h.bucket_counts(), (std::vector<int64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 9.0);
  EXPECT_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(HistogramTest, QuantilesOnSkewedDataReadBucketUpperBounds) {
  Histogram h({1.0, 10.0, 100.0});
  for (int i = 0; i < 99; ++i) h.Observe(0.5);
  h.Observe(50.0);  // the single tail observation
  // rank ceil(0.50 * 100) = 50 and ceil(0.99 * 100) = 99 both land in the
  // first bucket; ranks 100 and up (p99.9's ceil(0.999 * 100) = 100, and
  // q = 1) reach the tail observation's bucket.
  EXPECT_EQ(h.P50(), 1.0);
  EXPECT_EQ(h.P99(), 1.0);
  EXPECT_EQ(h.P999(), 100.0);
  EXPECT_EQ(h.Quantile(1.0), 100.0);
}

TEST(HistogramTest, TailQuantilesSeparateOnLargeSkewedPopulations) {
  Histogram h({1.0, 10.0, 100.0});
  // 10000 observations: 9898 fast, 92 slow, 10 very slow. p50/p95 read the
  // first bucket, p99 still does (rank 9900 <= 9898 fails by 2 — lands in
  // the second bucket), p99.9 (rank 9990) lands in the second bucket too,
  // and only q = 1 reaches the overflow maximum.
  for (int i = 0; i < 9898; ++i) h.Observe(0.5);
  for (int i = 0; i < 92; ++i) h.Observe(5.0);
  for (int i = 0; i < 10; ++i) h.Observe(500.0);
  EXPECT_EQ(h.P50(), 1.0);
  EXPECT_EQ(h.P95(), 1.0);
  EXPECT_EQ(h.P99(), 10.0);
  EXPECT_EQ(h.P999(), 10.0);
  EXPECT_EQ(h.Quantile(1.0), 500.0);
  // One more very-slow observation pushes rank ceil(0.999 * 10001) = 9991
  // past the 9990 non-overflow observations: p99.9 now reports the exact
  // overflow maximum.
  h.Observe(600.0);
  EXPECT_EQ(h.P999(), 600.0);
}

TEST(HistogramTest, OverflowBucketReportsExactMaximum) {
  Histogram h({1.0});
  h.Observe(5.0);
  h.Observe(7.0);
  EXPECT_EQ(h.Quantile(0.99), 7.0);
  EXPECT_EQ(h.P50(), 7.0);  // both observations live in overflow
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.P50(), 0.0);
  EXPECT_EQ(h.P99(), 0.0);
  EXPECT_EQ(h.P999(), 0.0);
}

TEST(HistogramTest, MergeFromCombinesShardsExactly) {
  Histogram a({1.0, 2.0, 4.0});
  Histogram b({1.0, 2.0, 4.0});
  Histogram all({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.5, 3.0}) {
    a.Observe(v);
    all.Observe(v);
  }
  for (double v : {0.25, 8.0}) {
    b.Observe(v);
    all.Observe(v);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_EQ(a.bucket_counts(), all.bucket_counts());
  EXPECT_EQ(a.P50(), all.P50());
  EXPECT_EQ(a.P95(), all.P95());
  EXPECT_EQ(a.P99(), all.P99());
  EXPECT_EQ(a.P999(), all.P999());
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, ReferencesSurviveResetAndRepeatLookup) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("a.count");
  c.Increment(3);
  EXPECT_EQ(registry.GetCounter("a.count").value(), 3);
  EXPECT_EQ(&registry.GetCounter("a.count"), &c);
  registry.Reset();
  EXPECT_EQ(c.value(), 0);
  c.Increment();  // the pre-Reset reference still works
  EXPECT_EQ(registry.GetCounter("a.count").value(), 1);
}

TEST(MetricsRegistryTest, SnapshotIsNameSortedAndDeterministicUnderThreads) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.GetCounter("zeta").Increment();
        registry.GetCounter("alpha").Increment();
        registry.GetCounter("mid").Increment();
        registry.GetGauge("gauge.last").Set(42.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "alpha");
  EXPECT_EQ(snapshot.counters[1].first, "mid");
  EXPECT_EQ(snapshot.counters[2].first, "zeta");
  for (const auto& [name, value] : snapshot.counters) {
    EXPECT_EQ(value, kThreads * kIncrements) << name;
  }
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 42.0);
}

TEST(MetricsRegistryTest, HistogramSnapshotCarriesQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "lat");
  EXPECT_EQ(snapshot.histograms[0].count, 2);
  EXPECT_EQ(snapshot.histograms[0].p50, 1.0);
  // Tail quantiles ride along: with two observations both land on the max
  // observation's bucket upper bound.
  EXPECT_EQ(snapshot.histograms[0].p99, 2.0);
  EXPECT_EQ(snapshot.histograms[0].p999, 2.0);
}

// ---------------------------------------------------------------------------
// Trace spans.
// ---------------------------------------------------------------------------

SpanStats FindSpan(const std::vector<SpanStats>& spans,
                   const std::string& name) {
  for (const SpanStats& s : spans) {
    if (s.name == name) return s;
  }
  return SpanStats{};
}

TEST(TraceTest, NestedSpansEachRecordInclusiveTime) {
  TraceCollector::Global().Reset();
  {
    GARL_TRACE_SPAN("outer");
    {
      GARL_TRACE_SPAN("inner");
    }
    {
      GARL_TRACE_SPAN("inner");
    }
  }
  std::vector<SpanStats> spans = TraceCollector::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Snapshot is name-sorted.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(FindSpan(spans, "inner").count, 2);
  EXPECT_EQ(FindSpan(spans, "outer").count, 1);
  // Outer's inclusive time covers both inner spans.
  EXPECT_GE(FindSpan(spans, "outer").total_ns,
            FindSpan(spans, "inner").total_ns);
  EXPECT_GE(FindSpan(spans, "inner").max_ns, 0);
}

TEST(TraceTest, PerThreadShardsMergeExactly) {
  TraceCollector::Global().Reset();
  constexpr int kThreads = 6;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        GARL_TRACE_SPAN("worker/span");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Threads have exited: their shards are retired, counts must be exact.
  SpanStats merged =
      FindSpan(TraceCollector::Global().Snapshot(), "worker/span");
  EXPECT_EQ(merged.count, kThreads * kSpansPerThread);
  EXPECT_GE(merged.total_ns, 0);
  EXPECT_GE(merged.max_ns, 0);
  TraceCollector::Global().Reset();
  EXPECT_TRUE(TraceCollector::Global().Snapshot().empty());
}

// ---------------------------------------------------------------------------
// Run-log records.
// ---------------------------------------------------------------------------

IterationRecord SampleRecord() {
  IterationRecord r;
  r.iteration = 2;
  r.episode_counter = 9;
  r.ugv_episode_reward = 1.25;
  r.uav_episode_reward = -0.5;
  r.policy_loss = 0.0625;
  r.value_loss = 3.0;
  r.entropy = 1.0986122886681098;
  r.ugv_grad_norm = 0.75;
  r.uav_grad_norm = 0.0;
  r.lr = 3e-4;
  r.diverged = true;
  r.recovered = true;
  r.psi = 0.5;
  r.xi = 0.875;
  r.zeta = 0.25;
  r.beta = 0.125;
  r.efficiency = 0.109375;
  r.wall_ns = 123456789;
  r.route_cache_hits = 40;
  r.route_cache_misses = 2;
  r.pool_threads = 4;
  r.pool_tasks = 12;
  r.pool_parallel_fors = 30;
  r.pool_inline_fors = 5;
  r.arena_heap_allocs = 128;
  r.arena_reuses = 4096;
  r.arena_cached_bytes = 1 << 20;
  r.arena_high_water_bytes = 2 << 20;
  r.spans = {{"trainer/collect", 3, 1000}, {"trainer/update_ugv", 3, 2000}};
  r.hists = {{"serve/latency_us", 64, 50.0, 95.0, 250.0, 900.0}};
  return r;
}

TEST(RunLogRecordTest, FormatIsByteStableAndSingleLine) {
  IterationRecord r = SampleRecord();
  std::string a = FormatIterationRecord(r);
  std::string b = FormatIterationRecord(r);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find('\n'), std::string::npos);
}

TEST(RunLogRecordTest, RoundTripPreservesEveryField) {
  IterationRecord r = SampleRecord();
  StatusOr<IterationRecord> parsed =
      ParseIterationRecord(FormatIterationRecord(r));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const IterationRecord& p = parsed.value();
  EXPECT_EQ(p.iteration, r.iteration);
  EXPECT_EQ(p.episode_counter, r.episode_counter);
  EXPECT_EQ(p.ugv_episode_reward, r.ugv_episode_reward);
  EXPECT_EQ(p.uav_episode_reward, r.uav_episode_reward);
  EXPECT_EQ(p.policy_loss, r.policy_loss);
  EXPECT_EQ(p.value_loss, r.value_loss);
  EXPECT_EQ(p.entropy, r.entropy);
  EXPECT_EQ(p.ugv_grad_norm, r.ugv_grad_norm);
  EXPECT_EQ(p.uav_grad_norm, r.uav_grad_norm);
  EXPECT_EQ(p.lr, r.lr);
  EXPECT_EQ(p.diverged, r.diverged);
  EXPECT_EQ(p.recovered, r.recovered);
  EXPECT_EQ(p.psi, r.psi);
  EXPECT_EQ(p.xi, r.xi);
  EXPECT_EQ(p.zeta, r.zeta);
  EXPECT_EQ(p.beta, r.beta);
  EXPECT_EQ(p.efficiency, r.efficiency);
  EXPECT_EQ(p.wall_ns, r.wall_ns);
  EXPECT_EQ(p.route_cache_hits, r.route_cache_hits);
  EXPECT_EQ(p.route_cache_misses, r.route_cache_misses);
  EXPECT_EQ(p.pool_threads, r.pool_threads);
  EXPECT_EQ(p.pool_tasks, r.pool_tasks);
  EXPECT_EQ(p.pool_parallel_fors, r.pool_parallel_fors);
  EXPECT_EQ(p.pool_inline_fors, r.pool_inline_fors);
  EXPECT_EQ(p.arena_heap_allocs, r.arena_heap_allocs);
  EXPECT_EQ(p.arena_reuses, r.arena_reuses);
  EXPECT_EQ(p.arena_cached_bytes, r.arena_cached_bytes);
  EXPECT_EQ(p.arena_high_water_bytes, r.arena_high_water_bytes);
  ASSERT_EQ(p.spans.size(), 2u);
  EXPECT_EQ(p.spans[0].name, "trainer/collect");
  EXPECT_EQ(p.spans[0].count, 3);
  EXPECT_EQ(p.spans[1].total_ns, 2000);
  ASSERT_EQ(p.hists.size(), 1u);
  EXPECT_EQ(p.hists[0].name, "serve/latency_us");
  EXPECT_EQ(p.hists[0].count, 64);
  EXPECT_EQ(p.hists[0].p50, 50.0);
  EXPECT_EQ(p.hists[0].p95, 95.0);
  EXPECT_EQ(p.hists[0].p99, 250.0);
  EXPECT_EQ(p.hists[0].p999, 900.0);
}

TEST(RunLogRecordTest, NonFiniteDoublesBecomeNullAndParseAsNaN) {
  IterationRecord r = SampleRecord();
  r.policy_loss = std::nan("");
  std::string line = FormatIterationRecord(r);
  EXPECT_NE(line.find("\"policy_loss\":null"), std::string::npos);
  StatusOr<IterationRecord> parsed = ParseIterationRecord(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(std::isnan(parsed.value().policy_loss));
}

TEST(RunLogRecordTest, DeterministicPayloadIgnoresRuntimeFields) {
  IterationRecord a = SampleRecord();
  IterationRecord b = SampleRecord();
  b.wall_ns = 1;  // rt-only differences...
  b.route_cache_hits = 0;
  b.pool_threads = 1;
  b.arena_heap_allocs = 7;
  b.arena_cached_bytes = 0;
  b.spans.clear();
  b.hists.clear();
  StatusOr<std::string> det_a =
      DeterministicPayload(FormatIterationRecord(a));
  StatusOr<std::string> det_b =
      DeterministicPayload(FormatIterationRecord(b));
  ASSERT_TRUE(det_a.ok());
  ASSERT_TRUE(det_b.ok());
  EXPECT_EQ(det_a.value(), det_b.value());  // ...leave `det` byte-identical

  b.policy_loss += 1.0;  // a det difference must show up
  StatusOr<std::string> det_c =
      DeterministicPayload(FormatIterationRecord(b));
  ASSERT_TRUE(det_c.ok());
  EXPECT_NE(det_a.value(), det_c.value());
}

TEST(RunLogRecordTest, ParserRejectsSchemaViolations) {
  // Wrong field order inside det.
  std::string line = FormatIterationRecord(SampleRecord());
  size_t at = line.find("\"iter\"");
  ASSERT_NE(at, std::string::npos);
  std::string reordered = line;
  reordered.replace(at, 6, "\"retI\"");
  EXPECT_FALSE(ParseIterationRecord(reordered).ok());
  // Truncation.
  EXPECT_FALSE(ParseIterationRecord(line.substr(0, line.size() / 2)).ok());
  // Trailing garbage.
  EXPECT_FALSE(ParseIterationRecord(line + "x").ok());
  // Not JSON at all.
  EXPECT_FALSE(ParseIterationRecord("plain text").ok());
}

}  // namespace
}  // namespace garl::obs
