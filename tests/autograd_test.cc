#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/grad_check.h"
#include "nn/ops.h"
#include "nn/tensor.h"

// Gradient correctness: every differentiable op is verified against central
// finite differences through MaxGradError, plus hand-checked simple cases.

namespace garl::nn {
namespace {

constexpr float kTol = 2e-2f;  // float32 finite differences are noisy

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed,
                    float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  Tensor t = Tensor::Zeros(std::move(shape), /*requires_grad=*/true);
  for (float& v : t.mutable_data()) v = rng.UniformF(lo, hi);
  return t;
}

TEST(AutogradTest, SimpleChainHandChecked) {
  // y = sum((2x)^2); dy/dx = 8x.
  Tensor x = Tensor::FromVector({3}, {1, 2, 3}, /*requires_grad=*/true);
  Tensor y = Sum(Square(MulScalar(x, 2.0f)));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 16.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 24.0f);
}

TEST(AutogradTest, GradAccumulatesWhenReused) {
  // y = sum(x * x_detached + x) uses x twice -> grads add.
  Tensor x = Tensor::FromVector({2}, {3, 4}, /*requires_grad=*/true);
  Tensor y = Sum(Add(x, x));  // dy/dx = 2
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 2.0f);
}

TEST(AutogradTest, DetachBlocksGradient) {
  Tensor x = Tensor::FromVector({2}, {1, 2}, /*requires_grad=*/true);
  Tensor y = Sum(Mul(x.Detach(), x));  // only one path differentiable
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 2.0f);
}

TEST(AutogradTest, DiamondGraph) {
  // z = sum((x + x^2) * x): verifies topological ordering on a diamond.
  Tensor x = RandomTensor({4}, 1);
  float err = MaxGradError(x, [](const Tensor& t) {
    return Sum(Mul(Add(t, Square(t)), t));
  });
  EXPECT_LT(err, kTol);
}

struct OpCase {
  const char* name;
  std::function<Tensor(const Tensor&)> loss;
  std::vector<int64_t> shape;
  float lo = -1.0f, hi = 1.0f;
};

class OpGradTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(OpGradTest, MatchesFiniteDifference) {
  const OpCase& c = GetParam();
  Tensor x = RandomTensor(c.shape, 42, c.lo, c.hi);
  EXPECT_LT(MaxGradError(x, c.loss), kTol) << c.name;
}

Tensor Weights(int64_t n, int64_t m, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::Zeros({n, m});
  for (float& v : t.mutable_data()) v = rng.UniformF(-1, 1);
  return t;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpGradTest,
    ::testing::Values(
        OpCase{"add", [](const Tensor& t) {
                 return Sum(Square(Add(t, Tensor::Full(t.shape(), 0.7f))));
               }, {3, 2}},
        OpCase{"sub", [](const Tensor& t) {
                 return Sum(Square(Sub(MulScalar(t, 2.0f),
                                       Tensor::Full(t.shape(), 0.3f))));
               }, {4}},
        OpCase{"mul", [](const Tensor& t) {
                 return Sum(Mul(t, AddScalar(t, 1.0f)));
               }, {4}},
        OpCase{"div", [](const Tensor& t) {
                 return Sum(Div(Tensor::Full(t.shape(), 1.0f), t));
               }, {3}, 0.5f, 2.0f},
        OpCase{"exp", [](const Tensor& t) { return Sum(Exp(t)); }, {4}},
        OpCase{"log", [](const Tensor& t) { return Sum(Log(t)); },
               {4}, 0.5f, 2.0f},
        OpCase{"sqrt", [](const Tensor& t) { return Sum(Sqrt(t)); },
               {4}, 0.5f, 2.0f},
        OpCase{"tanh", [](const Tensor& t) { return Sum(Tanh(t)); }, {5}},
        OpCase{"sigmoid", [](const Tensor& t) {
                 return Sum(Sigmoid(t));
               }, {5}},
        OpCase{"relu", [](const Tensor& t) {
                 return Sum(Relu(t));
               }, {6}, 0.1f, 1.0f},  // keep away from the kink
        OpCase{"clip", [](const Tensor& t) {
                 return Sum(Clip(t, -0.5f, 0.5f));
               }, {6}, -0.4f, 0.4f},
        OpCase{"matmul_lhs", [](const Tensor& t) {
                 return Sum(MatMul(t, Weights(3, 2, 7)));
               }, {2, 3}},
        OpCase{"matmul_rhs", [](const Tensor& t) {
                 return Sum(Square(MatMul(Weights(2, 3, 8), t)));
               }, {3, 2}},
        OpCase{"transpose", [](const Tensor& t) {
                 return Sum(Square(Transpose(t)));
               }, {2, 3}},
        OpCase{"mean", [](const Tensor& t) { return Mean(Square(t)); },
               {5}},
        OpCase{"sumdim0", [](const Tensor& t) {
                 return Sum(Square(SumDim(t, 0)));
               }, {3, 2}},
        OpCase{"sumdim1", [](const Tensor& t) {
                 return Sum(Square(SumDim(t, 1)));
               }, {3, 2}},
        OpCase{"norm", [](const Tensor& t) { return Norm(t); },
               {4}, 0.3f, 1.0f},
        OpCase{"dot", [](const Tensor& t) {
                 return Dot(t, AddScalar(t, 0.5f));
               }, {4}},
        OpCase{"softmax", [](const Tensor& t) {
                 return Sum(Square(Softmax(t)));
               }, {5}},
        OpCase{"softmax2d", [](const Tensor& t) {
                 return Sum(Square(Softmax(t)));
               }, {2, 3}},
        OpCase{"logsoftmax", [](const Tensor& t) {
                 return Sum(Square(LogSoftmax(t)));
               }, {5}},
        OpCase{"reshape", [](const Tensor& t) {
                 return Sum(Square(Reshape(t, {3, 2})));
               }, {2, 3}},
        OpCase{"rows", [](const Tensor& t) {
                 return Sum(Square(Rows(t, 1, 2)));
               }, {4, 2}},
        OpCase{"index_rows", [](const Tensor& t) {
                 return Sum(Square(IndexRows(t, {0, 2, 0})));
               }, {3, 2}},
        OpCase{"gather", [](const Tensor& t) {
                 return Square(Gather1d(t, 2));
               }, {4}},
        OpCase{"concat0", [](const Tensor& t) {
                 return Sum(Square(Concat({t, MulScalar(t, 2.0f)}, 0)));
               }, {2, 3}},
        OpCase{"concat1", [](const Tensor& t) {
                 return Sum(Square(Concat({t, MulScalar(t, 2.0f)}, 1)));
               }, {2, 3}},
        OpCase{"stack", [](const Tensor& t) {
                 std::vector<Tensor> rows = {Reshape(Rows(Reshape(t, {2, 3}), 0, 1), {3}),
                                             Reshape(Rows(Reshape(t, {2, 3}), 1, 1), {3})};
                 return Sum(Square(Stack(rows)));
               }, {6}},
        OpCase{"scale_rows_mat", [](const Tensor& t) {
                 return Sum(Square(ScaleRows(
                     t, Tensor::FromVector({3}, {0.5f, -1.0f, 2.0f}))));
               }, {3, 2}},
        OpCase{"scale_rows_vec", [](const Tensor& t) {
                 return Sum(Square(
                     ScaleRows(Weights(4, 2, 11).Detach(), t)));
               }, {4}},
        OpCase{"add_row_vector", [](const Tensor& t) {
                 return Sum(Square(AddRowVector(Weights(3, 4, 9).Detach(),
                                                t)));
               }, {4}},
        OpCase{"mse", [](const Tensor& t) {
                 return MseLoss(t, Tensor::Zeros({4}));
               }, {4}}),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return info.param.name;
    });

TEST(AutogradTest, Conv2dInputGrad) {
  Tensor x = RandomTensor({1, 2, 4, 4}, 3);
  Tensor w = Weights(2, 2 * 3 * 3, 5);  // values source
  Tensor weight = Tensor::FromVector({2, 2, 3, 3}, w.data());
  float err = MaxGradError(x, [&](const Tensor& t) {
    return Sum(Square(Conv2d(t, weight, Tensor(), 1, 1)));
  });
  EXPECT_LT(err, 5e-2f);
}

TEST(AutogradTest, Conv2dWeightGrad) {
  Tensor input = RandomTensor({1, 1, 4, 4}, 6).Detach();
  Tensor weight = RandomTensor({2, 1, 2, 2}, 7);
  float err = MaxGradError(weight, [&](const Tensor& t) {
    return Sum(Square(Conv2d(input, t, Tensor(), 2, 0)));
  });
  EXPECT_LT(err, 5e-2f);
}

TEST(AutogradTest, Conv2dBiasGrad) {
  Tensor input = RandomTensor({1, 1, 3, 3}, 8).Detach();
  Tensor weight = RandomTensor({2, 1, 2, 2}, 9).Detach();
  Tensor bias = RandomTensor({2}, 10);
  float err = MaxGradError(bias, [&](const Tensor& t) {
    return Sum(Square(Conv2d(input, weight, t, 1, 0)));
  });
  EXPECT_LT(err, 5e-2f);
}

TEST(AutogradTest, SecondBackwardAccumulates) {
  Tensor x = Tensor::FromVector({1}, {2}, /*requires_grad=*/true);
  Tensor y1 = Sum(Square(x));
  y1.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
  Tensor y2 = Sum(Square(x));
  y2.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);  // accumulated
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

}  // namespace
}  // namespace garl::nn
