#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "env/world.h"
#include "nn/linear.h"
#include "nn/ops.h"
#include "rl/evaluator.h"
#include "rl/feature_policy.h"
#include "rl/ippo_trainer.h"
#include "rl/uav_controller.h"

// Determinism contract of the parallel rollout layer: training losses and
// evaluation metrics must be bit-identical for any GARL_NUM_THREADS, because
// every episode's RNG stream is a pure function of (seed, episode number)
// and merge/reduction orders are fixed (see DESIGN.md, Threading model).

namespace garl::rl {
namespace {

env::CampusSpec TinyCampus() {
  env::CampusSpec campus;
  campus.name = "tiny";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  campus.sensors.push_back({{260, 190}, 1200.0});
  campus.sensors.push_back({{200, 320}, 900.0});
  return campus;
}

env::WorldParams TinyParams() {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 20;
  params.release_slots = 2;
  return params;
}

// Stateless mean-pool extractor that declares itself safe for concurrent
// inference, so the trainer/evaluator take the parallel path.
class SafePoolExtractor : public UgvFeatureExtractor {
 public:
  explicit SafePoolExtractor(Rng& rng)
      : proj_(std::make_unique<nn::Linear>(5, 16, rng)) {}

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override {
    std::vector<nn::Tensor> features;
    for (const auto& obs : observations) {
      nn::Tensor pooled = nn::MulScalar(
          nn::SumDim(obs.stop_features, 0),
          1.0f / static_cast<float>(obs.stop_features.size(0)));
      nn::Tensor self =
          nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
      features.push_back(
          nn::Tanh(proj_->Forward(nn::Concat({pooled, self}, 0))));
    }
    return features;
  }

  int64_t feature_dim() const override { return 16; }
  std::string name() const override { return "safe_pool"; }
  bool ThreadSafeExtract() const override { return true; }
  std::vector<nn::Tensor> Parameters() const override {
    return proj_->Parameters();
  }

 private:
  std::unique_ptr<nn::Linear> proj_;
};

std::unique_ptr<FeatureUgvPolicy> MakeSafePolicy(const env::World& world,
                                                 Rng& rng) {
  EnvContext context = MakeEnvContext(world);
  return std::make_unique<FeatureUgvPolicy>(
      std::make_unique<SafePoolExtractor>(rng), context,
      FeaturePolicyOptions{}, rng);
}

std::vector<IterationStats> TrainWithThreads(int64_t threads) {
  ThreadPool::SetGlobalThreads(threads);
  env::World world(TinyCampus(), TinyParams());
  Rng rng(7);
  auto policy = MakeSafePolicy(world, rng);
  TrainConfig config;
  config.iterations = 3;
  config.episodes_per_iteration = 3;
  config.seed = 11;
  IppoTrainer trainer(&world, policy.get(), nullptr, config);
  auto result = trainer.Train();
  EXPECT_TRUE(result.ok()) << result.status().message();
  ThreadPool::SetGlobalThreads(1);
  return result.ok() ? result.value() : std::vector<IterationStats>{};
}

void ExpectStatsIdentical(const std::vector<IterationStats>& a,
                          const std::vector<IterationStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ugv_episode_reward, b[i].ugv_episode_reward) << i;
    EXPECT_EQ(a[i].uav_episode_reward, b[i].uav_episode_reward) << i;
    EXPECT_EQ(a[i].policy_loss, b[i].policy_loss) << i;
    EXPECT_EQ(a[i].value_loss, b[i].value_loss) << i;
    EXPECT_EQ(a[i].entropy, b[i].entropy) << i;
    EXPECT_EQ(a[i].ugv_grad_norm, b[i].ugv_grad_norm) << i;
    EXPECT_EQ(a[i].metrics.data_collection_ratio,
              b[i].metrics.data_collection_ratio)
        << i;
    EXPECT_EQ(a[i].metrics.fairness, b[i].metrics.fairness) << i;
    EXPECT_EQ(a[i].metrics.energy_ratio, b[i].metrics.energy_ratio) << i;
  }
}

TEST(ParallelRolloutTest, TrainingLossCurveIdenticalForAnyThreadCount) {
  std::vector<IterationStats> one = TrainWithThreads(1);
  std::vector<IterationStats> two = TrainWithThreads(2);
  std::vector<IterationStats> four = TrainWithThreads(4);
  ASSERT_EQ(one.size(), 3u);
  ExpectStatsIdentical(one, two);
  ExpectStatsIdentical(one, four);
}

env::EpisodeMetrics EvaluateWithThreads(int64_t threads) {
  ThreadPool::SetGlobalThreads(threads);
  env::World world(TinyCampus(), TinyParams());
  Rng rng(5);
  auto policy = MakeSafePolicy(world, rng);
  GreedyUavController controller;
  EvalOptions options;
  options.episodes = 4;
  options.greedy = false;  // exercise the per-episode sampling streams
  options.seed = 99;
  env::EpisodeMetrics metrics =
      EvaluatePolicy(world, *policy, controller, options);
  ThreadPool::SetGlobalThreads(1);
  return metrics;
}

TEST(ParallelRolloutTest, EvaluatorMetricsIdenticalForAnyThreadCount) {
  env::EpisodeMetrics one = EvaluateWithThreads(1);
  env::EpisodeMetrics two = EvaluateWithThreads(2);
  env::EpisodeMetrics four = EvaluateWithThreads(4);
  EXPECT_EQ(one.data_collection_ratio, two.data_collection_ratio);
  EXPECT_EQ(one.fairness, two.fairness);
  EXPECT_EQ(one.cooperation_factor, two.cooperation_factor);
  EXPECT_EQ(one.energy_ratio, two.energy_ratio);
  EXPECT_EQ(one.data_collection_ratio, four.data_collection_ratio);
  EXPECT_EQ(one.fairness, four.fairness);
  EXPECT_EQ(one.cooperation_factor, four.cooperation_factor);
  EXPECT_EQ(one.energy_ratio, four.energy_ratio);
}

TEST(ParallelRolloutTest, ThreadSafetyFlagDelegation) {
  env::World world(TinyCampus(), TinyParams());
  Rng rng(3);
  auto safe = MakeSafePolicy(world, rng);
  EXPECT_TRUE(safe->ThreadSafeInference());
  // Extractors keep the conservative default unless they opt in.
  class DefaultExtractor : public SafePoolExtractor {
   public:
    using SafePoolExtractor::SafePoolExtractor;
    bool ThreadSafeExtract() const override { return false; }
  };
  EnvContext context = MakeEnvContext(world);
  FeatureUgvPolicy unsafe(std::make_unique<DefaultExtractor>(rng), context,
                          FeaturePolicyOptions{}, rng);
  EXPECT_FALSE(unsafe.ThreadSafeInference());
}

TEST(ParallelRolloutTest, MultiEpisodeRolloutKeepsEpisodesSeparate) {
  // With E episodes and U agents the merged rollout must contain E*U agent
  // sequences (GAE never crosses an episode boundary) and slot indices must
  // stay within bounds after renumbering.
  ThreadPool::SetGlobalThreads(2);
  env::World world(TinyCampus(), TinyParams());
  Rng rng(13);
  auto policy = MakeSafePolicy(world, rng);
  TrainConfig config;
  config.iterations = 1;
  config.episodes_per_iteration = 4;
  config.seed = 21;
  IppoTrainer trainer(&world, policy.get(), nullptr, config);
  IterationStats stats = trainer.RunIteration();
  // Rewards accumulate across all four episodes; a single tiny episode
  // cannot be bit-identical to four unless merging dropped episodes.
  EXPECT_TRUE(std::isfinite(stats.policy_loss));
  ThreadPool::SetGlobalThreads(1);
}

}  // namespace
}  // namespace garl::rl
