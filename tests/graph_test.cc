#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.h"
#include "graph/laplacian.h"
#include "graph/shortest_path.h"

namespace garl::graph {
namespace {

// Path graph 0-1-2-3 with unit weights.
Graph PathGraph(int64_t n) {
  Graph g(n);
  for (int64_t i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1, 1.0);
  return g;
}

TEST(GraphTest, BasicProperties) {
  Graph g = PathGraph(4);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 2);
}

TEST(GraphTest, Connectivity) {
  Graph g = PathGraph(4);
  EXPECT_TRUE(g.IsConnected());
  Graph h(3);
  h.AddEdge(0, 1);
  EXPECT_FALSE(h.IsConnected());
  EXPECT_TRUE(Graph(0).IsConnected());
  EXPECT_TRUE(Graph(1).IsConnected());
}

TEST(DijkstraTest, PathDistances) {
  Graph g = PathGraph(5);
  ShortestPaths sp = Dijkstra(g, 0);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(sp.dist[i], static_cast<double>(i));
  }
  EXPECT_EQ(sp.parent[4], 3);
  EXPECT_EQ(sp.parent[0], -1);
}

TEST(DijkstraTest, PrefersLighterPath) {
  // 0-1 (10) vs 0-2-1 (1+1).
  Graph g(3);
  g.AddEdge(0, 1, 10.0);
  g.AddEdge(0, 2, 1.0);
  g.AddEdge(2, 1, 1.0);
  ShortestPaths sp = Dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 2.0);
  EXPECT_EQ(sp.parent[1], 2);
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  Graph g(3);
  g.AddEdge(0, 1);
  ShortestPaths sp = Dijkstra(g, 0);
  EXPECT_TRUE(std::isinf(sp.dist[2]));
  EXPECT_EQ(sp.parent[2], -1);
}

TEST(BfsHopsTest, CountsHopsIgnoringWeights) {
  Graph g(4);
  g.AddEdge(0, 1, 100.0);
  g.AddEdge(1, 2, 100.0);
  g.AddEdge(0, 3, 0.5);
  auto hops = BfsHops(g, 0);
  EXPECT_EQ(hops[0], 0);
  EXPECT_EQ(hops[1], 1);
  EXPECT_EQ(hops[2], 2);
  EXPECT_EQ(hops[3], 1);
}

TEST(AllPairsTest, SymmetricOnUndirected) {
  Graph g = PathGraph(4);
  auto dist = AllPairsDistances(g);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(dist[i][j], dist[j][i]);
    }
  }
  EXPECT_DOUBLE_EQ(dist[0][3], 3.0);
}

TEST(NextHopTest, RoutesAlongShortestPath) {
  Graph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 3, 1.0);
  g.AddEdge(0, 2, 5.0);
  g.AddEdge(2, 3, 5.0);
  auto next = NextHopTable(g);
  EXPECT_EQ(next[0][3], 1);  // via the light path
  EXPECT_EQ(next[0][0], 0);
  EXPECT_EQ(next[3][0], 1);
}

TEST(NextHopTest, UnreachableIsMinusOne) {
  Graph g(2);
  auto next = NextHopTable(g);
  EXPECT_EQ(next[0][1], -1);
}

TEST(NextHopTest, FollowingNextHopsReachesTarget) {
  // Grid-ish graph; property: iterating next hops terminates at target.
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(2, 5);
  auto next = NextHopTable(g);
  for (int64_t s = 0; s < 6; ++s) {
    for (int64_t t = 0; t < 6; ++t) {
      int64_t node = s, steps = 0;
      while (node != t) {
        node = next[node][t];
        ASSERT_GE(node, 0);
        ASSERT_LE(++steps, 6);
      }
    }
  }
}

TEST(LaplacianTest, RowsOfAdjacencyHaveSelfLoops) {
  Graph g = PathGraph(3);
  nn::Tensor a = AdjacencyWithSelfLoops(g);
  EXPECT_EQ(a.at({0, 0}), 1.0f);
  EXPECT_EQ(a.at({0, 1}), 1.0f);
  EXPECT_EQ(a.at({0, 2}), 0.0f);
}

TEST(LaplacianTest, SymmetricNormalization) {
  Graph g = PathGraph(3);
  nn::Tensor l = NormalizedLaplacian(g);
  // Node 1 has degree 3 (with self loop), nodes 0 and 2 degree 2.
  EXPECT_NEAR(l.at({0, 0}), 0.5f, 1e-6f);
  EXPECT_NEAR(l.at({1, 1}), 1.0f / 3.0f, 1e-6f);
  EXPECT_NEAR(l.at({0, 1}), 1.0f / std::sqrt(6.0f), 1e-6f);
  // Symmetry.
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(l.at({i, j}), l.at({j, i}));
    }
  }
}

TEST(LaplacianTest, RowSumsAtMostOne) {
  // Property of symmetric normalization: spectral radius <= 1, and for
  // regular graphs row sums are exactly 1.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  nn::Tensor l = NormalizedLaplacian(g);
  for (int64_t i = 0; i < 4; ++i) {
    float row = 0;
    for (int64_t j = 0; j < 4; ++j) row += l.at({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

}  // namespace
}  // namespace garl::graph
