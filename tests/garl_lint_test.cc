// Tests for tools/garl_lint: each rule fires exactly where the fixture tree
// under tests/lint_fixtures/tree/ seeds a violation, exemption paths and
// suppressions stay quiet, and the helper passes behave.
//
// Note: suppression directives in THIS file's strings are inert by design —
// the linter only honours directives found in comments.

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/garl_lint/baseline.h"
#include "tools/garl_lint/cli.h"
#include "tools/garl_lint/lint.h"

namespace garl::lint {
namespace {

std::vector<Finding> FixtureFindings() {
  static const std::vector<Finding> kFindings =
      LintTree(GARL_LINT_FIXTURE_TREE, {"src", "bench"});
  return kFindings;
}

// All (line, rule) pairs reported for one fixture file.
std::vector<std::pair<int, std::string>> FindingsFor(const std::string& file) {
  std::vector<std::pair<int, std::string>> result;
  for (const auto& finding : FixtureFindings()) {
    if (finding.file == file) {
      result.emplace_back(finding.line, finding.rule);
    }
  }
  return result;
}

using Expected = std::vector<std::pair<int, std::string>>;

TEST(GarlLintFixtures, NondetRandFiresPerSourceAndSkipsProse) {
  EXPECT_EQ(FindingsFor("src/bad_rand.cc"),
            (Expected{{13, "nondet-rand"},
                      {17, "nondet-rand"},
                      {21, "nondet-rand"}}));
}

TEST(GarlLintFixtures, NondetTimeFiresOnWallClockReads) {
  EXPECT_EQ(FindingsFor("src/bad_time.cc"),
            (Expected{{6, "nondet-time"}, {10, "nondet-time"}}));
}

TEST(GarlLintFixtures, StatusDiscardFiresOnDroppedAndVoidedResults) {
  EXPECT_EQ(FindingsFor("src/bad_discard.cc"),
            (Expected{{34, "status-discard"},
                      {38, "status-discard"},
                      {42, "status-discard"},
                      {47, "status-discard"}}));
}

TEST(GarlLintFixtures, UnorderedSerializeFiresOnlyInSerializeishFunctions) {
  EXPECT_EQ(FindingsFor("src/bad_serialize.cc"),
            (Expected{{15, "unordered-serialize"},
                      {23, "unordered-serialize"}}));
}

TEST(GarlLintFixtures, RawNewDeleteFiresOutsideTensorAllocator) {
  EXPECT_EQ(FindingsFor("src/bad_new.cc"),
            (Expected{{10, "raw-new-delete"}, {14, "raw-new-delete"}}));
}

TEST(GarlLintFixtures, IncludeGuardFiresOnWrongAndMissingGuards) {
  EXPECT_EQ(FindingsFor("src/bad_guard.h"),
            (Expected{{1, "include-guard"}}));
  EXPECT_EQ(FindingsFor("src/missing_guard.h"),
            (Expected{{1, "include-guard"}}));
}

TEST(GarlLintFixtures, SuppressionsSilenceOnlyTheNamedRule) {
  EXPECT_EQ(FindingsFor("src/suppressed.cc"),
            (Expected{{26, "nondet-rand"}}));
}

TEST(GarlLintFixtures, UnknownRuleInSuppressionIsAFinding) {
  EXPECT_EQ(FindingsFor("src/bad_suppression.cc"),
            (Expected{{5, "bad-suppression"}}));
}

TEST(GarlLintFixtures, DirectIoFiresOnOfstreamFilesystemAndMkdir) {
  EXPECT_EQ(FindingsFor("src/bad_io.cc"),
            (Expected{{8, "direct-io"},
                      {13, "direct-io"},
                      {17, "direct-io"},
                      {21, "direct-io"}}));
}

TEST(GarlLintFixtures, IfstreamBanIsScopedToSrcNotTools) {
  // The ifstream arm of direct-io covers library code only: tools/ may
  // stream large inputs directly (see tools/stream_reader.cc fixture).
  EXPECT_TRUE(FindingsFor("tools/stream_reader.cc").empty());
}

TEST(GarlLintFixtures, ProcessSpawnFiresOutsideProcFunnel) {
  EXPECT_EQ(FindingsFor("src/bad_spawn.cc"),
            (Expected{{9, "process-spawn"},
                      {10, "process-spawn"},
                      {15, "process-spawn"},
                      {16, "process-spawn"},
                      {20, "process-spawn"}}));
}

TEST(GarlLintFixtures, ExemptPathsStayClean) {
  EXPECT_TRUE(FindingsFor("src/common/rng.cc").empty());
  EXPECT_TRUE(FindingsFor("src/common/fs_util.cc").empty());
  EXPECT_TRUE(FindingsFor("src/common/proc.cc").empty());
  EXPECT_TRUE(FindingsFor("src/nn/tensor.cc").empty());
  EXPECT_TRUE(FindingsFor("src/nn/arena.cc").empty());
  EXPECT_TRUE(FindingsFor("bench/timing.cc").empty());
  EXPECT_TRUE(FindingsFor("src/good.h").empty());
  EXPECT_TRUE(FindingsFor("src/obs/clock.cc").empty());
}

TEST(GarlLintFixtures, ClockExemptionIsFileScopedNotDirectoryScoped) {
  EXPECT_EQ(FindingsFor("src/obs/bad_obs_time.cc"),
            (Expected{{6, "nondet-time"}}));
}

TEST(GarlLintFixtures, HotPathDoubleFiresOnceInFixtureOps) {
  EXPECT_EQ(FindingsFor("src/nn/ops.cc"),
            (Expected{{5, "float-double-drift"}}));
}

TEST(GarlLintFixtures, HotPathDoubleFiresInSimdHeader) {
  EXPECT_EQ(FindingsFor("src/nn/simd.h"),
            (Expected{{9, "float-double-drift"}}));
}

TEST(GarlLintFixtures, DetTaintFiresOnClockIntoDetFieldAndSink) {
  // Direct var taint into a det field, returns-taint through a helper into a
  // det field, a tainted argument to a CRC sink, and a det write through a
  // record-typed reference parameter.
  EXPECT_EQ(FindingsFor("src/taint/bad_taint.cc"),
            (Expected{{24, "det-taint"},
                      {25, "det-taint"},
                      {31, "det-taint"},
                      {36, "det-taint"}}));
}

TEST(GarlLintFixtures, DetTaintSuppressionAndNearMissesStayQuiet) {
  EXPECT_TRUE(FindingsFor("src/taint/suppressed_taint.cc").empty());
  EXPECT_TRUE(FindingsFor("src/taint/near_miss_taint.cc").empty());
}

TEST(GarlLintFixtures, ParallelUnsafeFiresDirectlyAndTransitively) {
  // Line 18: Snapshot() lexically inside the body lambda. Line 13: the same
  // call inside LeafHelper, reachable from the body through the call graph.
  EXPECT_EQ(FindingsFor("src/par/bad_parallel.cc"),
            (Expected{{13, "parallel-unsafe"}, {18, "parallel-unsafe"}}));
}

TEST(GarlLintFixtures, ParallelUnsafeCoversRequestQueueWorkerLambdas) {
  // The serve::PolicyServer dispatcher shape: a ParallelFor body lambda
  // draining queue entries via helper methods. The unsafe call is two
  // method hops from the lambda and must still be flagged.
  EXPECT_EQ(FindingsFor("src/par/queue_worker_parallel.cc"),
            (Expected{{26, "parallel-unsafe"}}));
}

TEST(GarlLintFixtures, ParallelUnsafeFiresOnReloadFromWorker) {
  // Hot reload from a pool worker: Reload is one helper hop from the
  // ParallelFor body lambda (body -> MaybeRefreshPlan -> Reload).
  EXPECT_EQ(FindingsFor("src/par/reload_parallel.cc"),
            (Expected{{23, "parallel-unsafe"}}));
}

TEST(GarlLintFixtures, ParallelUnsafeSuppressionAndNearMissesStayQuiet) {
  EXPECT_TRUE(FindingsFor("src/par/suppressed_parallel.cc").empty());
  EXPECT_TRUE(FindingsFor("src/par/near_miss_parallel.cc").empty());
}

TEST(GarlLintFixtures, StatusPropagationEscalatesDiscardsOnEntryPaths) {
  // The discard in Helper is reported twice: once as the local discard, once
  // escalated with the Train -> Helper chain.
  EXPECT_EQ(FindingsFor("src/prop/bad_prop.cc"),
            (Expected{{12, "status-discard"}, {12, "status-propagation"}}));
}

TEST(GarlLintFixtures, StatusPropagationSkipsUnreachableDiscards) {
  // OrphanHelper is not reachable from any entry point: the plain discard
  // still fires, the escalation must not.
  EXPECT_EQ(FindingsFor("src/prop/near_miss_prop.cc"),
            (Expected{{12, "status-discard"}}));
}

TEST(GarlLintFixtures, StatusPropagationSuppressionCoversBothRules) {
  EXPECT_TRUE(FindingsFor("src/prop/suppressed_prop.cc").empty());
}

TEST(GarlLintFixtures, FindingsAreSortedByFileLineRule) {
  const auto findings = FixtureFindings();
  for (size_t i = 1; i < findings.size(); ++i) {
    const auto& a = findings[i - 1];
    const auto& b = findings[i];
    EXPECT_LE(std::tie(a.file, a.line, a.rule),
              std::tie(b.file, b.line, b.rule))
        << a.ToString() << " sorts after " << b.ToString();
  }
}

TEST(GarlLintFixtures, NoUnexpectedFindings) {
  // Every finding in the fixture tree is one the tests above asserted; a new
  // rule misfire shows up here with its full location.
  std::set<std::string> expected_files = {
      "src/bad_rand.cc",    "src/bad_time.cc",       "src/bad_discard.cc",
      "src/bad_serialize.cc", "src/bad_new.cc",      "src/bad_guard.h",
      "src/missing_guard.h", "src/suppressed.cc",    "src/bad_suppression.cc",
      "src/nn/ops.cc",       "src/nn/simd.h",         "src/obs/bad_obs_time.cc",
      "src/bad_io.cc",       "src/bad_spawn.cc",      "src/taint/bad_taint.cc",
      "src/par/bad_parallel.cc", "src/par/queue_worker_parallel.cc",
      "src/par/reload_parallel.cc",
      "src/prop/bad_prop.cc", "src/prop/near_miss_prop.cc"};
  for (const auto& finding : FixtureFindings()) {
    EXPECT_TRUE(expected_files.count(finding.file))
        << "unexpected finding: " << finding.ToString();
  }
}

TEST(GarlLintUnit, CanonicalGuardDerivation) {
  EXPECT_EQ(CanonicalGuard("src/common/rng.h"), "GARL_COMMON_RNG_H_");
  EXPECT_EQ(CanonicalGuard("bench/bench_common.h"), "GARL_BENCH_BENCH_COMMON_H_");
  EXPECT_EQ(CanonicalGuard("tools/garl_lint/lint.h"),
            "GARL_TOOLS_GARL_LINT_LINT_H_");
}

TEST(GarlLintUnit, StripRemovesCommentsAndLiteralContents) {
  const std::string stripped = StripCommentsAndStrings(
      "int x = 0; // std::rand()\n"
      "const char* s = \"srand(1)\";\n"
      "/* time(nullptr) */ int y;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  EXPECT_NE(stripped.find("int x = 0;"), std::string::npos);
  EXPECT_NE(stripped.find("int y;"), std::string::npos);
}

TEST(GarlLintUnit, CollectFallibleFunctionsFindsDeclarations) {
  const auto names = CollectFallibleFunctions(
      "Status DoThing(int x);\n"
      "[[nodiscard]] StatusOr<std::vector<int>> Parse(const std::string& s);\n"
      "  Status member_decl_;\n"          // member variable: not a function
      "static Status Helper();\n"
      "Status Ok();\n");                  // factory on Status itself: skipped
  EXPECT_EQ(names, (std::vector<std::string>{"DoThing", "Helper", "Parse"}));
}

TEST(GarlLintUnit, LintFileContentsHonoursFallibleSet) {
  const auto findings = LintFileContents(
      "src/example.cc", "void F() {\n  DoThing(1);\n}\n", {"DoThing"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "status-discard");
}

TEST(GarlLintUnit, KnownRulesIsStable) {
  const auto& rules = KnownRules();
  for (const auto& rule :
       {"nondet-rand", "nondet-time", "status-discard", "include-guard",
        "float-double-drift", "raw-new-delete", "unordered-serialize",
        "direct-io", "process-spawn", "bad-suppression", "det-taint",
        "parallel-unsafe", "status-propagation"}) {
    EXPECT_TRUE(rules.count(rule)) << rule;
  }
}

TEST(GarlLintUnit, FormatFindingsJsonGolden) {
  std::vector<Finding> findings;
  findings.push_back({"src/a.cc", 7, "det-taint", "bad \"bytes\"\there"});
  findings.push_back({"src/b.h", 1, "include-guard", "wrong guard"});
  EXPECT_EQ(FormatFindingsJson(findings),
            "[\n"
            " {\"file\": \"src/a.cc\", \"line\": 7, \"rule\": \"det-taint\", "
            "\"message\": \"bad \\\"bytes\\\"\\there\"},\n"
            " {\"file\": \"src/b.h\", \"line\": 1, \"rule\": "
            "\"include-guard\", \"message\": \"wrong guard\"}\n"
            "]\n");
  EXPECT_EQ(FormatFindingsJson({}), "[]\n");
}

TEST(GarlLintUnit, ParseBaselineAcceptsJustifiedEntriesOnly) {
  std::vector<BaselineEntry> entries;
  std::string error;
  EXPECT_TRUE(ParseBaseline("# comment\n"
                            "\n"
                            "det-taint src/a.cc:7 -- known rt-only digest\n"
                            "direct-io src/b.cc -- tool-local scratch file\n",
                            &entries, &error))
      << error;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "det-taint");
  EXPECT_EQ(entries[0].file, "src/a.cc");
  EXPECT_EQ(entries[0].line, 7);
  EXPECT_EQ(entries[1].line, 0);  // no line pin: matches any line in the file

  // Missing justification separator.
  EXPECT_FALSE(ParseBaseline("det-taint src/a.cc:7\n", &entries, &error));
  EXPECT_NE(error.find("--"), std::string::npos);
  // Empty justification.
  EXPECT_FALSE(ParseBaseline("det-taint src/a.cc:7 -- \n", &entries, &error));
  // Unknown rule name.
  EXPECT_FALSE(
      ParseBaseline("not-a-rule src/a.cc:7 -- why\n", &entries, &error));
  EXPECT_NE(error.find("not-a-rule"), std::string::npos);
}

TEST(GarlLintUnit, ApplyBaselineFiltersMatchesAndRejectsStaleEntries) {
  std::vector<Finding> findings;
  findings.push_back({"src/a.cc", 7, "det-taint", "m"});
  findings.push_back({"src/a.cc", 9, "det-taint", "m"});

  std::vector<BaselineEntry> entries;
  std::string error;
  ASSERT_TRUE(ParseBaseline("det-taint src/a.cc:7 -- fine\n", &entries, &error));
  auto remaining = findings;
  EXPECT_EQ(ApplyBaseline(entries, &remaining), "");
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].line, 9);

  // An entry matching nothing is stale and must fail the run, not linger.
  entries.clear();
  ASSERT_TRUE(
      ParseBaseline("det-taint src/gone.cc:1 -- obsolete\n", &entries, &error));
  remaining = findings;
  const std::string stale = ApplyBaseline(entries, &remaining);
  EXPECT_NE(stale.find("stale"), std::string::npos);
  // A stale baseline must not half-apply: findings stay untouched.
  EXPECT_EQ(remaining.size(), findings.size());
}

TEST(GarlLintUnit, IncrementalCacheMakesSecondRunAllHits) {
  const std::string cache_path =
      ::testing::TempDir() + "/garl_lint_cache_test.bin";
  std::remove(cache_path.c_str());

  LintOptions options;
  options.cache_path = cache_path;
  const auto first =
      LintTreeFull(GARL_LINT_FIXTURE_TREE, {"src", "bench"}, options);
  ASSERT_TRUE(first.error.empty()) << first.error;
  EXPECT_EQ(first.stats.cache_hits, 0u);
  EXPECT_EQ(first.stats.cache_misses, first.stats.files);

  const auto second =
      LintTreeFull(GARL_LINT_FIXTURE_TREE, {"src", "bench"}, options);
  ASSERT_TRUE(second.error.empty()) << second.error;
  EXPECT_EQ(second.stats.cache_hits, second.stats.files);
  EXPECT_EQ(second.stats.cache_misses, 0u);

  // A warm cache must not change a single finding.
  ASSERT_EQ(first.findings.size(), second.findings.size());
  for (size_t i = 0; i < first.findings.size(); ++i) {
    EXPECT_EQ(first.findings[i].ToString(), second.findings[i].ToString());
  }
  std::remove(cache_path.c_str());
}

// --- CLI exit-code contract (satellite: findings=1, usage/IO errors=2) ---

int RunCliQuiet(const std::vector<std::string>& args, std::string* stdout_text,
                std::string* stderr_text) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = RunCli(args, out, err);
  if (stdout_text != nullptr) *stdout_text = out.str();
  if (stderr_text != nullptr) *stderr_text = err.str();
  return code;
}

TEST(GarlLintCli, FindingsExitOne) {
  std::string out, err;
  const int code = RunCliQuiet(
      {"--root", GARL_LINT_FIXTURE_TREE, "src", "bench"}, &out, &err);
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("[det-taint]"), std::string::npos);
  EXPECT_NE(err.find("finding"), std::string::npos);
}

TEST(GarlLintCli, CleanTreeExitZero) {
  // The bench/ subtree of the fixture tree has no findings.
  std::string out, err;
  const int code =
      RunCliQuiet({"--root", GARL_LINT_FIXTURE_TREE, "bench"}, &out, &err);
  EXPECT_EQ(code, 0) << out << err;
}

TEST(GarlLintCli, UsageErrorsExitTwo) {
  std::string out, err;
  EXPECT_EQ(RunCliQuiet({"--bogus-flag"}, &out, &err), 2);
  EXPECT_NE(err.find("--bogus-flag"), std::string::npos);
  EXPECT_EQ(RunCliQuiet({"--root"}, &out, &err), 2);  // missing value
  EXPECT_EQ(RunCliQuiet({"--format=yaml"}, &out, &err), 2);
}

TEST(GarlLintCli, MissingBaselineFileExitsTwo) {
  std::string out, err;
  const int code = RunCliQuiet({"--root", GARL_LINT_FIXTURE_TREE, "--baseline",
                                "/nonexistent/garl.baseline", "bench"},
                               &out, &err);
  EXPECT_EQ(code, 2);
}

TEST(GarlLintCli, BaselineCoversFindingsAndStaleEntriesFail) {
  const std::string baseline_path =
      ::testing::TempDir() + "/garl_lint_test.baseline";
  {
    std::ofstream f(baseline_path);
    f << "status-discard src/prop/bad_prop.cc:12 -- fixture seed\n"
      << "status-propagation src/prop/bad_prop.cc:12 -- fixture seed\n"
      << "status-discard src/prop/near_miss_prop.cc:12 -- fixture seed\n";
  }
  std::string out, err;
  EXPECT_EQ(RunCliQuiet({"--root", GARL_LINT_FIXTURE_TREE, "--baseline",
                         baseline_path, "src/prop"},
                        &out, &err),
            0)
      << out << err;

  {
    std::ofstream f(baseline_path, std::ios::app);
    f << "det-taint src/prop/bad_prop.cc:1 -- no longer real\n";
  }
  EXPECT_EQ(RunCliQuiet({"--root", GARL_LINT_FIXTURE_TREE, "--baseline",
                         baseline_path, "src/prop"},
                        &out, &err),
            2);
  EXPECT_NE(err.find("stale"), std::string::npos);
  std::remove(baseline_path.c_str());
}

TEST(GarlLintCli, JsonFormatEmitsMachineReadableFindings) {
  std::string out, err;
  const int code = RunCliQuiet({"--root", GARL_LINT_FIXTURE_TREE,
                                "--format=json", "src/prop"},
                               &out, &err);
  EXPECT_EQ(code, 1);
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("\"rule\": \"status-propagation\""), std::string::npos);
  EXPECT_NE(out.find("\"file\": \"src/prop/bad_prop.cc\""), std::string::npos);
  EXPECT_EQ(out.find("["), 0u);  // no prose on stdout in json mode
}

TEST(GarlLintCli, RulesListingExitsZero) {
  std::string out, err;
  EXPECT_EQ(RunCliQuiet({"--rules"}, &out, &err), 0);
  EXPECT_NE(out.find("det-taint"), std::string::npos);
  EXPECT_NE(out.find("parallel-unsafe"), std::string::npos);
}

}  // namespace
}  // namespace garl::lint
