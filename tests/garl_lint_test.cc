// Tests for tools/garl_lint: each rule fires exactly where the fixture tree
// under tests/lint_fixtures/tree/ seeds a violation, exemption paths and
// suppressions stay quiet, and the helper passes behave.
//
// Note: suppression directives in THIS file's strings are inert by design —
// the linter only honours directives found in comments.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/garl_lint/lint.h"

namespace garl::lint {
namespace {

std::vector<Finding> FixtureFindings() {
  static const std::vector<Finding> kFindings =
      LintTree(GARL_LINT_FIXTURE_TREE, {"src", "bench"});
  return kFindings;
}

// All (line, rule) pairs reported for one fixture file.
std::vector<std::pair<int, std::string>> FindingsFor(const std::string& file) {
  std::vector<std::pair<int, std::string>> result;
  for (const auto& finding : FixtureFindings()) {
    if (finding.file == file) {
      result.emplace_back(finding.line, finding.rule);
    }
  }
  return result;
}

using Expected = std::vector<std::pair<int, std::string>>;

TEST(GarlLintFixtures, NondetRandFiresPerSourceAndSkipsProse) {
  EXPECT_EQ(FindingsFor("src/bad_rand.cc"),
            (Expected{{13, "nondet-rand"},
                      {17, "nondet-rand"},
                      {21, "nondet-rand"}}));
}

TEST(GarlLintFixtures, NondetTimeFiresOnWallClockReads) {
  EXPECT_EQ(FindingsFor("src/bad_time.cc"),
            (Expected{{6, "nondet-time"}, {10, "nondet-time"}}));
}

TEST(GarlLintFixtures, StatusDiscardFiresOnDroppedAndVoidedResults) {
  EXPECT_EQ(FindingsFor("src/bad_discard.cc"),
            (Expected{{34, "status-discard"},
                      {38, "status-discard"},
                      {42, "status-discard"},
                      {47, "status-discard"}}));
}

TEST(GarlLintFixtures, UnorderedSerializeFiresOnlyInSerializeishFunctions) {
  EXPECT_EQ(FindingsFor("src/bad_serialize.cc"),
            (Expected{{15, "unordered-serialize"},
                      {23, "unordered-serialize"}}));
}

TEST(GarlLintFixtures, RawNewDeleteFiresOutsideTensorAllocator) {
  EXPECT_EQ(FindingsFor("src/bad_new.cc"),
            (Expected{{10, "raw-new-delete"}, {14, "raw-new-delete"}}));
}

TEST(GarlLintFixtures, IncludeGuardFiresOnWrongAndMissingGuards) {
  EXPECT_EQ(FindingsFor("src/bad_guard.h"),
            (Expected{{1, "include-guard"}}));
  EXPECT_EQ(FindingsFor("src/missing_guard.h"),
            (Expected{{1, "include-guard"}}));
}

TEST(GarlLintFixtures, SuppressionsSilenceOnlyTheNamedRule) {
  EXPECT_EQ(FindingsFor("src/suppressed.cc"),
            (Expected{{26, "nondet-rand"}}));
}

TEST(GarlLintFixtures, UnknownRuleInSuppressionIsAFinding) {
  EXPECT_EQ(FindingsFor("src/bad_suppression.cc"),
            (Expected{{5, "bad-suppression"}}));
}

TEST(GarlLintFixtures, DirectIoFiresOnOfstreamFilesystemAndMkdir) {
  EXPECT_EQ(FindingsFor("src/bad_io.cc"),
            (Expected{{8, "direct-io"},
                      {13, "direct-io"},
                      {17, "direct-io"}}));
}

TEST(GarlLintFixtures, ProcessSpawnFiresOutsideProcFunnel) {
  EXPECT_EQ(FindingsFor("src/bad_spawn.cc"),
            (Expected{{9, "process-spawn"},
                      {10, "process-spawn"},
                      {15, "process-spawn"},
                      {16, "process-spawn"},
                      {20, "process-spawn"}}));
}

TEST(GarlLintFixtures, ExemptPathsStayClean) {
  EXPECT_TRUE(FindingsFor("src/common/rng.cc").empty());
  EXPECT_TRUE(FindingsFor("src/common/fs_util.cc").empty());
  EXPECT_TRUE(FindingsFor("src/common/proc.cc").empty());
  EXPECT_TRUE(FindingsFor("src/nn/tensor.cc").empty());
  EXPECT_TRUE(FindingsFor("src/nn/arena.cc").empty());
  EXPECT_TRUE(FindingsFor("bench/timing.cc").empty());
  EXPECT_TRUE(FindingsFor("src/good.h").empty());
  EXPECT_TRUE(FindingsFor("src/obs/clock.cc").empty());
}

TEST(GarlLintFixtures, ClockExemptionIsFileScopedNotDirectoryScoped) {
  EXPECT_EQ(FindingsFor("src/obs/bad_obs_time.cc"),
            (Expected{{6, "nondet-time"}}));
}

TEST(GarlLintFixtures, HotPathDoubleFiresOnceInFixtureOps) {
  EXPECT_EQ(FindingsFor("src/nn/ops.cc"),
            (Expected{{5, "float-double-drift"}}));
}

TEST(GarlLintFixtures, HotPathDoubleFiresInSimdHeader) {
  EXPECT_EQ(FindingsFor("src/nn/simd.h"),
            (Expected{{9, "float-double-drift"}}));
}

TEST(GarlLintFixtures, NoUnexpectedFindings) {
  // Every finding in the fixture tree is one the tests above asserted; a new
  // rule misfire shows up here with its full location.
  std::set<std::string> expected_files = {
      "src/bad_rand.cc",    "src/bad_time.cc",       "src/bad_discard.cc",
      "src/bad_serialize.cc", "src/bad_new.cc",      "src/bad_guard.h",
      "src/missing_guard.h", "src/suppressed.cc",    "src/bad_suppression.cc",
      "src/nn/ops.cc",       "src/nn/simd.h",         "src/obs/bad_obs_time.cc",
      "src/bad_io.cc",       "src/bad_spawn.cc"};
  for (const auto& finding : FixtureFindings()) {
    EXPECT_TRUE(expected_files.count(finding.file))
        << "unexpected finding: " << finding.ToString();
  }
}

TEST(GarlLintUnit, CanonicalGuardDerivation) {
  EXPECT_EQ(CanonicalGuard("src/common/rng.h"), "GARL_COMMON_RNG_H_");
  EXPECT_EQ(CanonicalGuard("bench/bench_common.h"), "GARL_BENCH_BENCH_COMMON_H_");
  EXPECT_EQ(CanonicalGuard("tools/garl_lint/lint.h"),
            "GARL_TOOLS_GARL_LINT_LINT_H_");
}

TEST(GarlLintUnit, StripRemovesCommentsAndLiteralContents) {
  const std::string stripped = StripCommentsAndStrings(
      "int x = 0; // std::rand()\n"
      "const char* s = \"srand(1)\";\n"
      "/* time(nullptr) */ int y;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  EXPECT_NE(stripped.find("int x = 0;"), std::string::npos);
  EXPECT_NE(stripped.find("int y;"), std::string::npos);
}

TEST(GarlLintUnit, CollectFallibleFunctionsFindsDeclarations) {
  const auto names = CollectFallibleFunctions(
      "Status DoThing(int x);\n"
      "[[nodiscard]] StatusOr<std::vector<int>> Parse(const std::string& s);\n"
      "  Status member_decl_;\n"          // member variable: not a function
      "static Status Helper();\n"
      "Status Ok();\n");                  // factory on Status itself: skipped
  EXPECT_EQ(names, (std::vector<std::string>{"DoThing", "Helper", "Parse"}));
}

TEST(GarlLintUnit, LintFileContentsHonoursFallibleSet) {
  const auto findings = LintFileContents(
      "src/example.cc", "void F() {\n  DoThing(1);\n}\n", {"DoThing"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "status-discard");
}

TEST(GarlLintUnit, KnownRulesIsStable) {
  const auto& rules = KnownRules();
  for (const auto& rule :
       {"nondet-rand", "nondet-time", "status-discard", "include-guard",
        "float-double-drift", "raw-new-delete", "unordered-serialize",
        "direct-io", "process-spawn", "bad-suppression"}) {
    EXPECT_TRUE(rules.count(rule)) << rule;
  }
}

}  // namespace
}  // namespace garl::lint
