// Tests for the batched policy-serving front door:
//   - core::ServingPlan (compile + scalar replay) vs the tensor Forward,
//   - packing/order/thread invariance of serve::PolicyServer (per-request
//     bytes never depend on batch shape, arrival order or thread count),
//   - zero steady-state arena traffic,
//   - rl::LoadPolicyForInference strip/robustness (no optimizer tensors,
//     clean Status on truncated / CRC-corrupt / missing checkpoints).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/garl_extractor.h"
#include "core/serving_plan.h"
#include "env/world.h"
#include "nn/arena.h"
#include "nn/inference.h"
#include "nn/serialization.h"
#include "nn/tensor.h"
#include "rl/checkpoint.h"
#include "rl/feature_policy.h"
#include "rl/inference.h"
#include "serve/policy_server.h"

namespace garl {
namespace {

env::CampusSpec TinyCampus() {
  env::CampusSpec campus;
  campus.name = "tiny";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  campus.sensors.push_back({{260, 190}, 1200.0});
  campus.sensors.push_back({{200, 320}, 900.0});
  return campus;
}

env::WorldParams TinyParams() {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 16;
  params.release_slots = 2;
  return params;
}

struct Fixture {
  explicit Fixture(bool use_mc = true, bool use_e = true, uint64_t seed = 7)
      : world(TinyCampus(), TinyParams()),
        context(rl::MakeEnvContext(world)),
        rng(seed) {
    core::GarlConfig config;
    config.use_mc = use_mc;
    config.use_e = use_e;
    config.mc_gcn.layers = 2;
    config.e_comm.layers = 2;
    policy = std::make_unique<rl::FeatureUgvPolicy>(
        std::make_unique<core::GarlExtractor>(context, config, rng), context,
        rl::FeaturePolicyOptions{}, rng);
  }

  // Joint observations along a scripted episode (fresh episodes as needed),
  // giving a cross-episode request pool with varied stops/positions.
  std::vector<std::vector<env::UgvObservation>> Requests(int64_t n) {
    std::vector<std::vector<env::UgvObservation>> requests;
    auto episode = std::make_unique<env::World>(TinyCampus(), TinyParams());
    const std::vector<env::UavAction> idle(
        static_cast<size_t>(episode->num_uavs()));
    for (int64_t r = 0; r < n; ++r) {
      if (episode->Done()) {
        episode = std::make_unique<env::World>(TinyCampus(), TinyParams());
      }
      requests.push_back({episode->ObserveUgv(0), episode->ObserveUgv(1)});
      std::vector<env::UgvAction> actions(2);
      for (int64_t u = 0; u < 2; ++u) {
        actions[static_cast<size_t>(u)].release = (episode->slot() % 3 == 2);
        actions[static_cast<size_t>(u)].target_stop =
            (episode->slot() + u) % context.num_stops;
      }
      episode->Step(actions, idle);
    }
    return requests;
  }

  env::World world;
  rl::EnvContext context;
  Rng rng;
  std::unique_ptr<rl::FeatureUgvPolicy> policy;
};

// Greedy decode used at serving time, applied to the tensor Forward's
// outputs: first-max argmax over raw logits (Categorical::Mode semantics).
int64_t FirstMax(const std::vector<float>& x) {
  size_t best = 0;
  for (size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return static_cast<int64_t>(best);
}

void ExpectResultsBitIdentical(const serve::ServeResult& a,
                               const serve::ServeResult& b) {
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  ASSERT_EQ(a.actions.size(), b.actions.size());
  for (size_t u = 0; u < a.actions.size(); ++u) {
    EXPECT_EQ(a.actions[u].release, b.actions[u].release);
    EXPECT_EQ(a.actions[u].target_stop, b.actions[u].target_stop);
  }
  ASSERT_EQ(a.values.size(), b.values.size());
  ASSERT_EQ(0, std::memcmp(a.values.data(), b.values.data(),
                           a.values.size() * sizeof(float)));
}

class ServingVariantTest
    : public ::testing::TestWithParam<std::pair<bool, bool>> {};

// The compiled plan's greedy actions, values and logits must agree with the
// training-graph Forward. Agreement is argmax-exact and numerically close;
// bit-identity is only promised plan-vs-plan (the tensor path uses blocked
// GEMM accumulation orders the scalar replay does not reproduce).
TEST_P(ServingVariantTest, PlanMatchesTensorForward) {
  auto [use_mc, use_e] = GetParam();
  Fixture f(use_mc, use_e);
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  core::ServingWorkspace ws = plan.value().MakeWorkspace();

  const int64_t b = f.context.num_stops;
  for (auto& request : f.Requests(12)) {
    std::vector<rl::UgvPolicyOutput> outputs = f.policy->Forward(request);
    std::vector<env::UgvAction> actions;
    Status status = plan.value().Execute(request, &ws, &actions);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(actions.size(), 2u);
    for (size_t u = 0; u < 2; ++u) {
      const auto& out = outputs[u];
      const bool expect_release = FirstMax(out.release_logits.data()) == 1;
      EXPECT_EQ(actions[u].release, expect_release);
      if (!expect_release) {
        EXPECT_EQ(actions[u].target_stop, FirstMax(out.target_logits.data()));
      }
      EXPECT_NEAR(ws.values[u], out.value.data()[0], 1e-3f);
      for (int64_t i = 0; i < 2; ++i) {
        EXPECT_NEAR(ws.release_logits[u * 2 + static_cast<size_t>(i)],
                    out.release_logits.data()[static_cast<size_t>(i)], 1e-3f);
      }
      for (int64_t i = 0; i < b; ++i) {
        EXPECT_NEAR(
            ws.target_logits[u * static_cast<size_t>(b) +
                             static_cast<size_t>(i)],
            out.target_logits.data()[static_cast<size_t>(i)], 1e-3f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ServingVariantTest,
                         ::testing::Values(std::make_pair(true, true),
                                           std::make_pair(true, false),
                                           std::make_pair(false, true),
                                           std::make_pair(false, false)));

TEST(ServingPlanTest, RepeatedExecuteIsBitIdenticalAcrossWorkspaces) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto requests = f.Requests(6);

  core::ServingWorkspace ws_a = plan.value().MakeWorkspace();
  core::ServingWorkspace ws_b = plan.value().MakeWorkspace();
  for (const auto& request : requests) {
    std::vector<env::UgvAction> actions_a;
    std::vector<env::UgvAction> actions_b;
    ASSERT_TRUE(plan.value().Execute(request, &ws_a, &actions_a).ok());
    // ws_b is "dirty" from a different previous request each round; results
    // must not depend on workspace history.
    ASSERT_TRUE(plan.value().Execute(requests.back(), &ws_b, &actions_b).ok());
    ASSERT_TRUE(plan.value().Execute(request, &ws_b, &actions_b).ok());
    for (size_t u = 0; u < actions_a.size(); ++u) {
      EXPECT_EQ(actions_a[u].release, actions_b[u].release);
      EXPECT_EQ(actions_a[u].target_stop, actions_b[u].target_stop);
    }
    ASSERT_EQ(0, std::memcmp(ws_a.values.data(), ws_b.values.data(),
                             ws_a.values.size() * sizeof(float)));
    ASSERT_EQ(0, std::memcmp(ws_a.target_logits.data(),
                             ws_b.target_logits.data(),
                             ws_a.target_logits.size() * sizeof(float)));
  }
}

// Steady-state serving allocates nothing from the tensor arena: no value
// buffers, no autograd nodes. (The replay runs entirely on plain float
// scratch pre-sized by MakeWorkspace.)
TEST(ServingPlanTest, SteadyStateExecuteHasZeroArenaTraffic) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  core::ServingWorkspace ws = plan.value().MakeWorkspace();
  auto requests = f.Requests(8);
  std::vector<env::UgvAction> actions;
  for (const auto& request : requests) {  // warm-up
    ASSERT_TRUE(plan.value().Execute(request, &ws, &actions).ok());
  }

  const nn::arena::ArenaStats before = nn::arena::GlobalStats();
  for (int round = 0; round < 25; ++round) {
    for (const auto& request : requests) {
      ASSERT_TRUE(plan.value().Execute(request, &ws, &actions).ok());
    }
  }
  const nn::arena::ArenaStats after = nn::arena::GlobalStats();
  EXPECT_EQ(before.heap_allocs, after.heap_allocs);
  EXPECT_EQ(before.node_heap_allocs, after.node_heap_allocs);
}

TEST(ServingPlanTest, RejectsNonGarlExtractorPolicies) {
  class FlatExtractor : public rl::UgvFeatureExtractor {
   public:
    std::vector<nn::Tensor> Extract(
        const std::vector<env::UgvObservation>& observations) override {
      std::vector<nn::Tensor> features;
      for (size_t i = 0; i < observations.size(); ++i) {
        features.push_back(nn::Tensor::Zeros({8}));
      }
      return features;
    }
    int64_t feature_dim() const override { return 8; }
    std::string name() const override { return "flat"; }
    std::vector<nn::Tensor> Parameters() const override { return {}; }
  };

  Fixture f;
  Rng rng(5);
  rl::FeatureUgvPolicy flat(std::make_unique<FlatExtractor>(), f.context,
                            rl::FeaturePolicyOptions{}, rng);
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(flat, f.context);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServingPlanTest, MalformedRequestsFailCleanly) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  core::ServingWorkspace ws = plan.value().MakeWorkspace();
  std::vector<env::UgvAction> actions;

  // Empty request.
  Status empty = plan.value().Execute({}, &ws, &actions);
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);

  // More agents than the plan was compiled for.
  auto request = f.Requests(1).front();
  auto oversized = request;
  oversized.push_back(request.front());
  oversized.push_back(request.front());
  Status too_many = plan.value().Execute(oversized, &ws, &actions);
  EXPECT_EQ(too_many.code(), StatusCode::kInvalidArgument);

  // Default-constructed observation (undefined tensors).
  std::vector<env::UgvObservation> undefined(2);
  Status bad = plan.value().Execute(undefined, &ws, &actions);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);

  // Out-of-range stop index.
  auto corrupt = request;
  corrupt.front().current_stop = f.context.num_stops + 3;
  Status range = plan.value().Execute(corrupt, &ws, &actions);
  EXPECT_EQ(range.code(), StatusCode::kInvalidArgument);

  // A valid request still works on the same workspace afterwards.
  Status good = plan.value().Execute(request, &ws, &actions);
  EXPECT_TRUE(good.ok()) << good.ToString();
}

// The flagship property: per-request results are byte-identical however the
// requests are packed into batches (sizes 1 / 7 / 64), in whatever order
// they arrive (forward, reversed, interleaved shuffle), and whatever the
// worker-pool width is (GARL_NUM_THREADS 1 and 4, set programmatically via
// ThreadPool::SetGlobalThreads).
TEST(PolicyServerTest, ResultsInvariantToPackingOrderAndThreads) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto requests = f.Requests(40);
  const size_t n = requests.size();

  // Deterministic reference, computed single-threaded outside the server.
  const int64_t saved_threads = ThreadPool::Global().num_threads();
  ThreadPool::SetGlobalThreads(1);
  std::vector<serve::ServeResult> reference;
  {
    serve::PolicyServer server(&plan.value());
    server.ServeBatch(requests, &reference);
  }
  ASSERT_EQ(reference.size(), n);

  // A fixed shuffled arrival order (no RNG: position hash permutation).
  std::vector<size_t> shuffled(n);
  for (size_t i = 0; i < n; ++i) shuffled[i] = (i * 17 + 5) % n;

  for (int64_t threads : {int64_t{1}, int64_t{4}}) {
    ThreadPool::SetGlobalThreads(threads);
    for (int64_t batch : {int64_t{1}, int64_t{7}, int64_t{64}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      serve::PolicyServerOptions options;
      options.max_batch = batch;
      serve::PolicyServer server(&plan.value(), options);

      // Sync path, forward order, chunked into `batch`-sized ServeBatches.
      for (size_t begin = 0; begin < n; begin += static_cast<size_t>(batch)) {
        const size_t end =
            std::min(n, begin + static_cast<size_t>(batch));
        std::vector<std::vector<env::UgvObservation>> chunk(
            requests.begin() + static_cast<int64_t>(begin),
            requests.begin() + static_cast<int64_t>(end));
        std::vector<serve::ServeResult> results;
        server.ServeBatch(chunk, &results);
        ASSERT_EQ(results.size(), end - begin);
        for (size_t i = begin; i < end; ++i) {
          ExpectResultsBitIdentical(reference[i], results[i - begin]);
        }
      }

      // Async path, shuffled arrival order.
      std::vector<std::future<serve::ServeResult>> futures(n);
      for (size_t i : shuffled) {
        futures[i] = server.Submit(requests[i]);
      }
      for (size_t i = 0; i < n; ++i) {
        serve::ServeResult result = futures[i].get();
        ExpectResultsBitIdentical(reference[i], result);
      }

      // Async path, reversed arrival order.
      for (size_t i = n; i-- > 0;) {
        futures[i] = server.Submit(requests[i]);
      }
      for (size_t i = 0; i < n; ++i) {
        serve::ServeResult result = futures[i].get();
        ExpectResultsBitIdentical(reference[i], result);
      }
      EXPECT_EQ(server.served(), static_cast<int64_t>(3 * n));
    }
  }
  ThreadPool::SetGlobalThreads(saved_threads);
}

TEST(PolicyServerTest, SteadyStateServingHasZeroArenaTraffic) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto requests = f.Requests(8);
  serve::PolicyServer server(&plan.value());

  std::vector<serve::ServeResult> results;
  server.ServeBatch(requests, &results);  // warm-up builds the workspace pool
  for (const auto& result : results) ASSERT_TRUE(result.status.ok());

  const nn::arena::ArenaStats before = nn::arena::GlobalStats();
  for (int round = 0; round < 10; ++round) {
    server.ServeBatch(requests, &results);
    for (const auto& result : results) ASSERT_TRUE(result.status.ok());
  }
  const nn::arena::ArenaStats after = nn::arena::GlobalStats();
  EXPECT_EQ(before.heap_allocs, after.heap_allocs);
  EXPECT_EQ(before.node_heap_allocs, after.node_heap_allocs);
}

TEST(PolicyServerTest, MalformedRequestFailsAloneInsideABatch) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto good = f.Requests(2);
  std::vector<std::vector<env::UgvObservation>> batch = {
      good[0], {}, good[1]};

  serve::PolicyServer server(&plan.value());
  std::vector<serve::ServeResult> results;
  server.ServeBatch(batch, &results);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[1].actions.empty());
  EXPECT_TRUE(results[2].status.ok());
}

TEST(PolicyServerTest, ZeroRequestBatchIsANoOp) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  serve::PolicyServer server(&plan.value());

  // Pre-filled junk must be cleared, not served.
  std::vector<serve::ServeResult> results(3);
  server.ServeBatch({}, &results);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(server.served(), 0);
  // An empty batch is not evidence of health: the server never transitions
  // out of kStarting on it.
  EXPECT_EQ(server.Health().state, serve::HealthState::kStarting);
}

TEST(PolicyServerTest, ZeroUgvRequestFailsAloneOnBothPaths) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  serve::PolicyServer server(&plan.value());
  auto good = f.Requests(1).front();

  // Sync path: a zero-UGV request inside a batch fails only itself.
  std::vector<serve::ServeResult> results;
  server.ServeBatch({good, {}}, &results);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_EQ(results[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[1].actions.empty());
  EXPECT_TRUE(results[1].values.empty());

  // Async path: same containment.
  std::future<serve::ServeResult> bad_future = server.Submit({});
  std::future<serve::ServeResult> good_future = server.Submit(good);
  EXPECT_EQ(bad_future.get().status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(good_future.get().status.ok());
}

TEST(PolicyServerTest, DuplicateObservationsInOneBatchServeIdentically) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto requests = f.Requests(3);
  // The same joint observation appears three times in one fan-out: each copy
  // runs on its own workspace slot and must produce the same bytes.
  std::vector<std::vector<env::UgvObservation>> batch = {
      requests[0], requests[1], requests[0], requests[0], requests[2]};

  serve::PolicyServer server(&plan.value());
  std::vector<serve::ServeResult> results;
  server.ServeBatch(batch, &results);
  ASSERT_EQ(results.size(), 5u);
  ExpectResultsBitIdentical(results[0], results[2]);
  ExpectResultsBitIdentical(results[0], results[3]);
  EXPECT_TRUE(results[1].status.ok());
  EXPECT_TRUE(results[4].status.ok());
}

// Satellite regression: a Submit racing Shutdown must deterministically
// resolve every returned future (served, kUnavailable, or kCancelled) and
// never leave one hanging. Run under TSan via cmake/run_tsan_tests.cmake.
TEST(PolicyServerTest, SubmitShutdownRaceResolvesEveryFuture) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto request = f.Requests(1).front();

  for (int round = 0; round < 8; ++round) {
    serve::PolicyServerOptions options;
    options.max_queue_depth = 4;  // overload is part of the race surface
    auto server = std::make_unique<serve::PolicyServer>(&plan.value(), options);

    constexpr int kProducers = 4;
    constexpr int kPerProducer = 32;
    std::vector<std::vector<std::future<serve::ServeResult>>> futures(
        kProducers);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      futures[p].reserve(kPerProducer);
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          futures[static_cast<size_t>(p)].push_back(server->Submit(request));
        }
      });
    }
    // Shutdown lands mid-stream on even rounds, after the producers on odd
    // ones — both interleavings must resolve everything.
    if (round % 2 == 0) server->Shutdown();
    for (auto& producer : producers) producer.join();
    server->Shutdown();

    for (auto& lane : futures) {
      for (auto& future : lane) {
        ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "Submit future left hanging after Shutdown";
        const serve::ServeResult result = future.get();
        EXPECT_TRUE(result.status.ok() ||
                    result.status.code() == StatusCode::kCancelled ||
                    result.status.code() == StatusCode::kUnavailable)
            << result.status.ToString();
      }
    }
  }
}

TEST(PolicyServerTest, AsyncLatencyHistogramAndShutdownSemantics) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto requests = f.Requests(5);

  obs::MetricsRegistry registry;
  serve::PolicyServerOptions options;
  options.metrics = &registry;
  serve::PolicyServer server(&plan.value(), options);

  std::vector<std::future<serve::ServeResult>> futures;
  for (const auto& request : requests) futures.push_back(server.Submit(request));
  for (auto& future : futures) {
    ASSERT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(server.latency_histogram().count(),
            static_cast<int64_t>(requests.size()));

  server.Shutdown();
  server.Shutdown();  // idempotent
  serve::ServeResult cancelled = server.Submit(requests.front()).get();
  EXPECT_EQ(cancelled.status.code(), StatusCode::kCancelled);
}

std::string TestDir(const std::string& name) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Builds a valid v2 checkpoint directory holding `policy`'s parameters plus
// a garbage Adam moment file: if the inference loader ever opened the Adam
// file, deserialization would fail loudly.
std::string MakeCheckpoint(const std::string& name,
                           const rl::FeatureUgvPolicy& policy,
                           int64_t episode) {
  namespace fs = std::filesystem;
  std::string dir = TestDir(name);
  const std::string sub = dir + "/ckpt_00000005";
  fs::create_directories(sub);
  Status save = nn::SaveParameters(policy.Parameters(),
                                   sub + "/" + rl::kUgvParamsFile);
  GARL_CHECK_MSG(save.ok(), save.ToString());
  std::ofstream adam(sub + "/" + rl::kUgvAdamFile, std::ios::binary);
  adam << "this is not a valid tensor file";
  adam.close();
  Status manifest = rl::WriteCheckpointManifest(
      dir, {rl::CheckpointInfo{"ckpt_00000005", episode}});
  GARL_CHECK_MSG(manifest.ok(), manifest.ToString());
  return dir;
}

TEST(InferenceLoadTest, LoadsParametersStripsGradStateAndSkipsAdam) {
  Fixture trained(true, true, 7);
  std::string dir = MakeCheckpoint("serving_inference_load", *trained.policy,
                                   /*episode=*/41);

  // Differently-initialized serving replica.
  Fixture serving(true, true, 99);
  nn::arena::ResetStatsForTest();
  StatusOr<int64_t> episode =
      rl::LoadPolicyForInference(dir, serving.policy.get());
  ASSERT_TRUE(episode.ok()) << episode.status().ToString();
  EXPECT_EQ(episode.value(), 41);

  // No autograd nodes were built while loading: a trainer-style load that
  // touched Adam state or rebuilt graph edges would bump these counters.
  const nn::arena::ArenaStats stats = nn::arena::GlobalStats();
  EXPECT_EQ(stats.node_heap_allocs, 0);

  // Parameters are byte-identical to the trained policy's...
  std::vector<nn::Tensor> want = trained.policy->Parameters();
  std::vector<nn::Tensor> got = serving.policy->Parameters();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].shape(), got[i].shape());
    EXPECT_EQ(0, std::memcmp(want[i].data().data(), got[i].data().data(),
                             want[i].data().size() * sizeof(float)));
    // ...and fully stripped for inference. (grad() itself CHECKs on
    // non-grad tensors, so inspect the impl directly.)
    EXPECT_FALSE(got[i].requires_grad());
    EXPECT_TRUE(got[i].impl()->grad.empty());
  }

  // The stripped policy still compiles and serves.
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*serving.policy, serving.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  core::ServingWorkspace ws = plan.value().MakeWorkspace();
  std::vector<env::UgvAction> actions;
  Status served = plan.value().Execute(serving.Requests(1).front(), &ws,
                                       &actions);
  EXPECT_TRUE(served.ok()) << served.ToString();
}

TEST(NnInferenceTest, StripForInferenceClearsAutogradState) {
  nn::Tensor t = nn::Tensor::Zeros({4}, /*requires_grad=*/true);
  t.impl()->grad.assign(4, 1.0f);
  std::vector<nn::Tensor> params = {t};
  nn::StripForInference(params);
  EXPECT_FALSE(t.requires_grad());
  EXPECT_TRUE(t.impl()->grad.empty());
  EXPECT_TRUE(t.impl()->parents.empty());
  EXPECT_EQ(t.impl()->backward_fn, nullptr);
}

TEST(InferenceLoadTest, TruncatedCheckpointFailsCleanly) {
  Fixture trained;
  std::string dir = MakeCheckpoint("serving_inference_trunc", *trained.policy,
                                   /*episode=*/5);
  const std::string params_path =
      dir + "/ckpt_00000005/" + rl::kUgvParamsFile;

  std::ifstream in(params_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);
  std::ofstream out(params_path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<int64_t>(bytes.size() / 2));
  out.close();

  Fixture serving(true, true, 99);
  StatusOr<int64_t> episode =
      rl::LoadPolicyForInference(dir, serving.policy.get());
  ASSERT_FALSE(episode.ok());
}

TEST(InferenceLoadTest, CrcCorruptCheckpointFailsCleanly) {
  Fixture trained;
  std::string dir = MakeCheckpoint("serving_inference_crc", *trained.policy,
                                   /*episode=*/5);
  const std::string params_path =
      dir + "/ckpt_00000005/" + rl::kUgvParamsFile;

  std::fstream file(params_path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(0, std::ios::end);
  const int64_t size = file.tellg();
  ASSERT_GT(size, 128);
  file.seekp(size / 2);
  char byte = 0;
  file.seekg(size / 2);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(size / 2);
  file.write(&byte, 1);
  file.close();

  Fixture serving(true, true, 99);
  StatusOr<int64_t> episode =
      rl::LoadPolicyForInference(dir, serving.policy.get());
  ASSERT_FALSE(episode.ok());
}

TEST(InferenceLoadTest, MissingManifestIsNotFound) {
  std::string dir = TestDir("serving_inference_missing");
  Fixture serving;
  StatusOr<int64_t> episode =
      rl::LoadPolicyForInference(dir, serving.policy.get());
  ASSERT_FALSE(episode.ok());
  EXPECT_EQ(episode.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace garl
