// Tests for the bench baseline-comparison helper (bench/bench_compare.h):
// the guard against zero/near-zero/corrupt baseline entries, and the
// regression threshold arithmetic the bench_kernels --baseline gate uses.

#include "bench_compare.h"

#include <gtest/gtest.h>

#include <limits>

namespace garl::bench {
namespace {

constexpr double kTolerance = 1.10;

TEST(BenchCompareTest, HealthyBaselinePassesWithinTolerance) {
  BaselineComparison cmp = CompareToBaseline(1.0, 1.05, kTolerance);
  EXPECT_TRUE(cmp.comparable);
  EXPECT_FALSE(cmp.regressed);
  // The boundary itself is not a regression (<=, matching the old gate).
  cmp = CompareToBaseline(1.0, 1.10, kTolerance);
  EXPECT_TRUE(cmp.comparable);
  EXPECT_FALSE(cmp.regressed);
}

TEST(BenchCompareTest, RealSlowdownStillRegresses) {
  BaselineComparison cmp = CompareToBaseline(1.0, 1.2, kTolerance);
  EXPECT_TRUE(cmp.comparable);
  EXPECT_TRUE(cmp.regressed);
}

TEST(BenchCompareTest, ZeroBaselineIsSkippedNotFailed) {
  // The divide-by-small hazard: 0 * tolerance == 0, so every real
  // measurement would read as a regression. The guard skips instead.
  BaselineComparison cmp = CompareToBaseline(0.0, 0.5, kTolerance);
  EXPECT_FALSE(cmp.comparable);
  EXPECT_FALSE(cmp.regressed);
}

TEST(BenchCompareTest, NearZeroBaselineIsSkipped) {
  BaselineComparison cmp =
      CompareToBaseline(kMinComparableBaselineSeconds / 2.0, 0.5, kTolerance);
  EXPECT_FALSE(cmp.comparable);
  // Exactly at the floor is comparable.
  cmp = CompareToBaseline(kMinComparableBaselineSeconds, 2e-6, kTolerance);
  EXPECT_TRUE(cmp.comparable);
  EXPECT_TRUE(cmp.regressed);
}

TEST(BenchCompareTest, NegativeAndNonFiniteBaselinesAreSkipped) {
  EXPECT_FALSE(CompareToBaseline(-1.0, 0.5, kTolerance).comparable);
  EXPECT_FALSE(
      CompareToBaseline(std::numeric_limits<double>::quiet_NaN(), 0.5,
                        kTolerance)
          .comparable);
  EXPECT_FALSE(CompareToBaseline(std::numeric_limits<double>::infinity(), 0.5,
                                 kTolerance)
                   .comparable);
}

TEST(BenchCompareTest, NonFiniteMeasurementIsARegressionNotAPass) {
  BaselineComparison cmp = CompareToBaseline(
      1.0, std::numeric_limits<double>::quiet_NaN(), kTolerance);
  EXPECT_TRUE(cmp.comparable);
  EXPECT_TRUE(cmp.regressed);
  cmp = CompareToBaseline(1.0, std::numeric_limits<double>::infinity(),
                          kTolerance);
  EXPECT_TRUE(cmp.comparable);
  EXPECT_TRUE(cmp.regressed);
}

}  // namespace
}  // namespace garl::bench
