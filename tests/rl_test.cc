#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "common/fs_util.h"
#include "env/campus_factory.h"
#include "env/world.h"
#include "rl/checkpoint.h"
#include "nn/mlp.h"
#include "nn/ops.h"
#include "rl/evaluator.h"
#include "rl/feature_policy.h"
#include "rl/ippo_trainer.h"
#include "rl/replay_buffer.h"
#include "rl/rollout.h"
#include "rl/uav_controller.h"

namespace garl::rl {
namespace {

env::CampusSpec TinyCampus() {
  env::CampusSpec campus;
  campus.name = "tiny";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  campus.sensors.push_back({{260, 190}, 1200.0});
  campus.sensors.push_back({{200, 320}, 900.0});
  return campus;
}

env::WorldParams TinyParams() {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 20;
  params.release_slots = 2;
  return params;
}

// Minimal extractor: mean-pooled stop features + own position.
class PoolExtractor : public UgvFeatureExtractor {
 public:
  PoolExtractor(const EnvContext& context, Rng& rng)
      : proj_(std::make_unique<nn::Linear>(5, 16, rng)) {
    (void)context;
  }

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override {
    std::vector<nn::Tensor> features;
    for (const auto& obs : observations) {
      nn::Tensor pooled = nn::MulScalar(
          nn::SumDim(obs.stop_features, 0),
          1.0f / static_cast<float>(obs.stop_features.size(0)));
      nn::Tensor self = nn::Reshape(
          nn::Rows(obs.ugv_positions, obs.self, 1), {2});
      features.push_back(
          nn::Tanh(proj_->Forward(nn::Concat({pooled, self}, 0))));
    }
    return features;
  }

  int64_t feature_dim() const override { return 16; }
  std::string name() const override { return "pool"; }
  std::vector<nn::Tensor> Parameters() const override {
    return proj_->Parameters();
  }

 private:
  std::unique_ptr<nn::Linear> proj_;
};

std::unique_ptr<FeatureUgvPolicy> MakePolicy(const env::World& world,
                                             Rng& rng) {
  EnvContext context = MakeEnvContext(world);
  return std::make_unique<FeatureUgvPolicy>(
      std::make_unique<PoolExtractor>(context, rng), context,
      FeaturePolicyOptions{}, rng);
}

TEST(FeaturePolicyTest, OutputShapes) {
  env::World world(TinyCampus(), TinyParams());
  Rng rng(1);
  auto policy = MakePolicy(world, rng);
  std::vector<env::UgvObservation> obs = {world.ObserveUgv(0),
                                          world.ObserveUgv(1)};
  auto outputs = policy->Forward(obs);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[0].release_logits.shape(), (std::vector<int64_t>{2}));
  EXPECT_EQ(outputs[0].target_logits.shape(),
            (std::vector<int64_t>{world.stops().num_stops()}));
  EXPECT_EQ(outputs[0].value.numel(), 1);
}

TEST(FeaturePolicyTest, ParametersIncludeExtractorAndHeads) {
  env::World world(TinyCampus(), TinyParams());
  Rng rng(1);
  auto policy = MakePolicy(world, rng);
  // Extractor (2) + trunk/release/target/value heads (2 each).
  EXPECT_EQ(policy->Parameters().size(), 10u);
  EXPECT_GT(policy->NumParameters(), 0);
}

TEST(SampleUgvActionTest, GreedyPicksArgmax) {
  UgvPolicyOutput out;
  out.release_logits = nn::Tensor::FromVector({2}, {5.0f, -5.0f});
  out.target_logits = nn::Tensor::FromVector({4}, {0, 0, 9, 0});
  out.value = nn::Tensor::Scalar(0.7f);
  Rng rng(3);
  SampledUgvAction a = SampleUgvAction(out, rng, /*greedy=*/true);
  EXPECT_FALSE(a.action.release);
  EXPECT_EQ(a.action.target_stop, 2);
  EXPECT_FLOAT_EQ(a.value, 0.7f);
  EXPECT_LT(a.log_prob, 0.0f);
}

TEST(SampleUgvActionTest, ReleaseSkipsTargetLogProb) {
  UgvPolicyOutput out;
  out.release_logits = nn::Tensor::FromVector({2}, {-9.0f, 9.0f});
  out.target_logits = nn::Tensor::FromVector({4}, {0, 0, 0, 0});
  out.value = nn::Tensor::Scalar(0.0f);
  Rng rng(3);
  SampledUgvAction a = SampleUgvAction(out, rng, /*greedy=*/true);
  EXPECT_TRUE(a.action.release);
  EXPECT_EQ(a.action.target_stop, -1);
  // log prob ~ log(1) = 0 for the near-certain release choice only.
  EXPECT_NEAR(a.log_prob, 0.0f, 1e-3f);
}

TEST(UgvActionLogProbTest, MatchesSampledLogProb) {
  UgvPolicyOutput out;
  out.release_logits = nn::Tensor::FromVector({2}, {0.3f, -0.2f});
  out.target_logits = nn::Tensor::FromVector({3}, {0.1f, 0.5f, -0.4f});
  out.value = nn::Tensor::Scalar(0.0f);
  Rng rng(5);
  SampledUgvAction a = SampleUgvAction(out, rng, /*greedy=*/false);
  UgvDecision d;
  d.release = a.action.release ? 1 : 0;
  d.target = a.action.target_stop;
  UgvLogProbEntropy lp = UgvActionLogProb(out, d);
  EXPECT_NEAR(lp.log_prob.item(), a.log_prob, 1e-5f);
  EXPECT_GT(lp.entropy.item(), 0.0f);
}

TEST(GreedyUavControllerTest, FliesTowardNearestSensor) {
  env::World world(TinyCampus(), TinyParams());
  std::vector<env::UgvAction> release(2, {true, -1});
  std::vector<env::UavAction> idle(2);
  world.Step(release, idle);
  ASSERT_TRUE(world.UavAirborne(0));
  GreedyUavController controller;
  Rng rng(7);
  env::UavAction act = controller.Act(world, 0, rng);
  // The two sensors near the start stop were drained during the release
  // slot; the nearest sensor still holding data decides the heading.
  const env::UavState& uav = world.uavs()[0];
  const env::SensorState* nearest = nullptr;
  double best = 1e18;
  for (const env::SensorState& s : world.sensors()) {
    if (s.remaining_mb <= 0.0) continue;
    double d = env::Distance(uav.position, s.position);
    if (d < best) {
      best = d;
      nearest = &s;
    }
  }
  ASSERT_NE(nearest, nullptr);
  double want_dx = nearest->position.x - uav.position.x;
  if (want_dx != 0.0) {
    EXPECT_GT(act.dx * want_dx, 0.0);  // same sign as the bearing
  }
  double norm = std::hypot(act.dx, act.dy);
  EXPECT_LE(norm, world.params().uav_max_dist * 1.2);
}

TEST(GreedyUavControllerTest, CollectsDataOverEpisode) {
  env::World world(TinyCampus(), TinyParams());
  GreedyUavController controller;
  Rng rng(11);
  std::vector<env::UgvAction> release(2, {true, -1});
  while (!world.Done()) {
    std::vector<env::UavAction> uav_actions(2);
    for (int64_t v = 0; v < 2; ++v) {
      if (world.UavAirborne(v)) {
        uav_actions[static_cast<size_t>(v)] = controller.Act(world, v, rng);
      }
    }
    world.Step(release, uav_actions);
  }
  EXPECT_GT(world.Metrics().data_collection_ratio, 0.1);
}

TEST(IppoTrainerTest, RunsIterationsAndImprovesOrHolds) {
  env::World world(TinyCampus(), TinyParams());
  Rng rng(13);
  auto policy = MakePolicy(world, rng);
  TrainConfig config;
  config.iterations = 2;
  config.epochs = 2;
  config.seed = 99;
  IppoTrainer trainer(&world, policy.get(), nullptr, config);
  auto result = trainer.Train();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& history = result.value();
  ASSERT_EQ(history.size(), 2u);
  for (const auto& it : history) {
    EXPECT_TRUE(std::isfinite(it.policy_loss));
    EXPECT_TRUE(std::isfinite(it.value_loss));
    EXPECT_GE(it.entropy, 0.0);
    EXPECT_GE(it.metrics.data_collection_ratio, 0.0);
  }
}

TEST(IppoTrainerTest, ParametersChangeAfterTraining) {
  env::World world(TinyCampus(), TinyParams());
  Rng rng(17);
  auto policy = MakePolicy(world, rng);
  std::vector<std::vector<float>> before;
  for (const auto& p : policy->Parameters()) before.push_back(p.data());
  TrainConfig config;
  config.iterations = 1;
  config.seed = 5;
  IppoTrainer trainer(&world, policy.get(), nullptr, config);
  trainer.RunIteration();
  bool changed = false;
  auto params = policy->Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].data() != before[i]) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(EvaluatorTest, ReturnsFiniteMetricsAndIsDeterministic) {
  env::World world(TinyCampus(), TinyParams());
  Rng rng(19);
  auto policy = MakePolicy(world, rng);
  GreedyUavController uav;
  EvalOptions options;
  options.episodes = 2;
  options.seed = 42;
  env::EpisodeMetrics a = EvaluatePolicy(world, *policy, uav, options);
  env::EpisodeMetrics b = EvaluatePolicy(world, *policy, uav, options);
  EXPECT_DOUBLE_EQ(a.efficiency, b.efficiency);
  EXPECT_GE(a.data_collection_ratio, 0.0);
  EXPECT_LE(a.data_collection_ratio, 1.0);
  EXPECT_GE(a.fairness, 0.0);
  EXPECT_LE(a.fairness, 1.0 + 1e-9);
}

TEST(ReplayBufferTest, AddAndSample) {
  ReplayBuffer<int> buffer(4);
  EXPECT_TRUE(buffer.empty());
  for (int i = 0; i < 3; ++i) buffer.Add(i);
  EXPECT_EQ(buffer.size(), 3);
  Rng rng(1);
  auto sample = buffer.Sample(10, rng);
  EXPECT_EQ(sample.size(), 10u);
  for (const int* v : sample) {
    EXPECT_GE(*v, 0);
    EXPECT_LT(*v, 3);
  }
}

TEST(ReplayBufferTest, OverwritesOldestWhenFull) {
  ReplayBuffer<int> buffer(3);
  for (int i = 0; i < 5; ++i) buffer.Add(i);
  EXPECT_EQ(buffer.size(), 3);
  Rng rng(2);
  // Only values {2,3,4} remain.
  for (const int* v : buffer.Sample(30, rng)) {
    EXPECT_GE(*v, 2);
    EXPECT_LE(*v, 4);
  }
}

std::string TestDir(const std::string& name) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

void ExpectStatsBitIdentical(const IterationStats& a,
                             const IterationStats& b) {
  EXPECT_EQ(a.ugv_episode_reward, b.ugv_episode_reward);
  EXPECT_EQ(a.uav_episode_reward, b.uav_episode_reward);
  EXPECT_EQ(a.policy_loss, b.policy_loss);
  EXPECT_EQ(a.value_loss, b.value_loss);
  EXPECT_EQ(a.entropy, b.entropy);
  EXPECT_EQ(a.ugv_grad_norm, b.ugv_grad_norm);
  EXPECT_EQ(a.uav_grad_norm, b.uav_grad_norm);
  EXPECT_EQ(a.metrics.data_collection_ratio, b.metrics.data_collection_ratio);
  EXPECT_EQ(a.metrics.fairness, b.metrics.fairness);
  EXPECT_EQ(a.metrics.cooperation_factor, b.metrics.cooperation_factor);
  EXPECT_EQ(a.metrics.energy_ratio, b.metrics.energy_ratio);
  EXPECT_EQ(a.metrics.efficiency, b.metrics.efficiency);
}

// Kill-and-resume equivalence on both paper campuses: training 8 iterations
// straight through must be bit-identical to training 4, checkpointing,
// restoring into a fresh trainer (different construction seed), and
// training 4 more.
TEST(CheckpointTest, KillAndResumeIsBitIdenticalOnBothCampuses) {
  struct Case {
    const char* label;
    env::CampusSpec campus;
  };
  std::vector<Case> cases = {{"kaist", env::MakeKaistCampus()},
                             {"ucla", env::MakeUclaCampus()}};
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    env::WorldParams params;
    params.num_ugvs = 2;
    params.uavs_per_ugv = 1;
    params.horizon = 10;
    params.release_slots = 2;
    TrainConfig config;
    config.epochs = 2;
    config.seed = 7;

    // Uninterrupted reference run.
    env::World world_a(c.campus, params);
    Rng rng_a(23);
    auto policy_a = MakePolicy(world_a, rng_a);
    config.iterations = 8;
    IppoTrainer trainer_a(&world_a, policy_a.get(), nullptr, config);
    auto full = trainer_a.Train();
    ASSERT_TRUE(full.ok()) << full.status().ToString();

    // First half, then a durable checkpoint.
    std::string dir = TestDir(std::string("resume_") + c.label);
    env::World world_b(c.campus, params);
    Rng rng_b(23);
    auto policy_b = MakePolicy(world_b, rng_b);
    config.iterations = 4;
    IppoTrainer trainer_b(&world_b, policy_b.get(), nullptr, config);
    auto first = trainer_b.Train();
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(trainer_b.SaveCheckpoint(dir).ok());

    // "Fresh process": new world/policy/trainer with a different
    // construction seed, state coming entirely from the checkpoint.
    env::World world_c(c.campus, params);
    Rng rng_c(999);
    auto policy_c = MakePolicy(world_c, rng_c);
    IppoTrainer trainer_c(&world_c, policy_c.get(), nullptr, config);
    Status restored = trainer_c.RestoreCheckpoint(dir);
    ASSERT_TRUE(restored.ok()) << restored.ToString();
    auto second = trainer_c.Train();
    ASSERT_TRUE(second.ok()) << second.status().ToString();

    ASSERT_EQ(full.value().size(), 8u);
    ASSERT_EQ(first.value().size(), 4u);
    ASSERT_EQ(second.value().size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
      SCOPED_TRACE("iteration " + std::to_string(i));
      ExpectStatsBitIdentical(full.value()[i], first.value()[i]);
      ExpectStatsBitIdentical(full.value()[i + 4], second.value()[i]);
    }
  }
}

TEST(CheckpointTest, RetentionKeepsOnlyLastK) {
  std::string dir = TestDir("retention");
  env::World world(TinyCampus(), TinyParams());
  Rng rng(31);
  auto policy = MakePolicy(world, rng);
  TrainConfig config;
  config.iterations = 5;
  config.epochs = 1;
  config.seed = 3;
  config.checkpoint_dir = dir;
  config.checkpoint_keep_last = 2;
  IppoTrainer trainer(&world, policy.get(), nullptr, config);
  auto result = trainer.Train();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto manifest = ReadCheckpointManifest(dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest.value().size(), 2u);
  EXPECT_EQ(manifest.value().back().episode, 5);
  // Pruned subdirectories are really gone; retained ones restore.
  namespace fs = std::filesystem;
  size_t subdirs = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_directory()) ++subdirs;
  }
  EXPECT_EQ(subdirs, 2u);
  EXPECT_TRUE(trainer.RestoreCheckpoint(dir).ok());
}

// Every corrupted-checkpoint case must be rejected with a non-OK Status —
// never an abort, never silently restored garbage.
TEST(CheckpointTest, CorruptedCheckpointFilesRejected) {
  namespace fs = std::filesystem;
  std::string dir = TestDir("corrupt");
  env::World world(TinyCampus(), TinyParams());
  Rng rng(37);
  auto policy = MakePolicy(world, rng);
  TrainConfig config;
  config.iterations = 1;
  config.epochs = 1;
  config.seed = 9;
  IppoTrainer trainer(&world, policy.get(), nullptr, config);
  auto result = trainer.Train();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(trainer.SaveCheckpoint(dir).ok());

  auto latest = LatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok());
  std::string sub = dir + "/" + latest.value().name;

  auto write_raw = [](const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  };

  for (const char* file :
       {kUgvParamsFile, kUgvAdamFile, kTrainerStateFile}) {
    SCOPED_TRACE(file);
    std::string path = sub + "/" + file;
    auto original = ReadFileToString(path);
    ASSERT_TRUE(original.ok());
    const std::string& bytes = original.value();

    // Truncate at every 64-byte boundary (and just before the CRC footer).
    for (size_t cut = 0; cut < bytes.size(); cut += 64) {
      write_raw(path, bytes.substr(0, cut));
      EXPECT_FALSE(trainer.RestoreCheckpoint(dir).ok())
          << file << " accepted truncation at " << cut;
    }
    write_raw(path, bytes.substr(0, bytes.size() - 1));
    EXPECT_FALSE(trainer.RestoreCheckpoint(dir).ok());

    // Flip a header byte and a payload byte.
    for (size_t pos : {size_t{2}, bytes.size() / 2}) {
      std::string corrupted = bytes;
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x20);
      write_raw(path, corrupted);
      EXPECT_FALSE(trainer.RestoreCheckpoint(dir).ok())
          << file << " accepted bit flip at " << pos;
    }

    // Restore the good bytes; the checkpoint must work again.
    write_raw(path, bytes);
    EXPECT_TRUE(trainer.RestoreCheckpoint(dir).ok());
  }

  // Manifest pointing at a missing checkpoint, then no manifest at all.
  fs::remove_all(sub);
  EXPECT_FALSE(trainer.RestoreCheckpoint(dir).ok());
  fs::remove(fs::path(dir) / kManifestFile);
  EXPECT_FALSE(trainer.RestoreCheckpoint(dir).ok());
}

TEST(SentinelTest, RecoversFromInjectedNanGradients) {
  env::World world(TinyCampus(), TinyParams());
  Rng rng(29);
  auto policy = MakePolicy(world, rng);
  TrainConfig config;
  config.iterations = 3;
  config.epochs = 2;
  config.seed = 11;
  IppoTrainer trainer(&world, policy.get(), nullptr, config);
  TrainFaultInjection fault;
  fault.nan_grad_iteration = 1;
  trainer.set_fault_injection_for_test(fault);
  auto result = trainer.Train();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& history = result.value();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_FALSE(history[0].diverged);
  EXPECT_TRUE(history[1].diverged);
  EXPECT_TRUE(history[1].recovered);
  EXPECT_FALSE(history[2].diverged);
  for (const auto& it : history) {
    EXPECT_TRUE(std::isfinite(it.policy_loss));
    EXPECT_TRUE(std::isfinite(it.value_loss));
    EXPECT_TRUE(std::isfinite(it.ugv_grad_norm));
  }
  for (const auto& p : policy->Parameters()) {
    for (float v : p.data()) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(SentinelTest, GivesUpAfterBoundedRetries) {
  env::World world(TinyCampus(), TinyParams());
  Rng rng(41);
  auto policy = MakePolicy(world, rng);
  TrainConfig config;
  config.iterations = 3;
  config.epochs = 1;
  config.seed = 13;
  config.max_divergence_retries = 2;
  IppoTrainer trainer(&world, policy.get(), nullptr, config);
  TrainFaultInjection fault;
  fault.nan_grad_iteration = 1;
  fault.sticky = true;  // every retry diverges again
  trainer.set_fault_injection_for_test(fault);
  auto result = trainer.Train();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(EnvContextTest, BuiltFromWorld) {
  env::World world(TinyCampus(), TinyParams());
  EnvContext context = MakeEnvContext(world);
  EXPECT_EQ(context.num_stops, world.stops().num_stops());
  EXPECT_EQ(context.num_ugvs, 2);
  EXPECT_EQ(context.laplacian.shape(),
            (std::vector<int64_t>{context.num_stops, context.num_stops}));
  EXPECT_EQ(context.stop_xy.shape(),
            (std::vector<int64_t>{context.num_stops, 2}));
  for (float v : context.stop_xy.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  EXPECT_GT(context.neighbor_radius_norm, 0.0);
}

}  // namespace
}  // namespace garl::rl
