#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/env_flags.h"
#include "common/fs_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_writer.h"

namespace garl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Split();
  // Child stream should not replay the parent's stream.
  Rng reference(42);
  (void)reference.engine()();  // parent advanced once during Split
  EXPECT_NE(child.engine()(), reference.engine()());
}

TEST(RngTest, SampleIndexRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights = {0.0, 0.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.SampleIndex(weights), 2);
  }
}

TEST(RngTest, SampleIndexZeroWeightsFallsBackToUniform) {
  Rng rng(13);
  std::vector<double> weights = {0.0, 0.0};
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 200; ++i) ++counts[rng.SampleIndex(weights)];
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
}

TEST(RngTest, NormalHasRoughlyCorrectMoments) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(StringUtilTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
}

TEST(StringUtilTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "", "bc"};
  std::string joined = Join(parts, ",");
  EXPECT_EQ(joined, "a,,bc");
  EXPECT_EQ(Split(joined, ','), parts);
}

TEST(StringUtilTest, SplitSingleField) {
  EXPECT_EQ(Split("abc", ','), std::vector<std::string>{"abc"});
}

TEST(TableWriterTest, PrintsAlignedTable) {
  TableWriter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"long_name", "2"});
  std::ostringstream os;
  table.Print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("long_name"), std::string::npos);
  EXPECT_NE(text.find("| x"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2);
}

TEST(TableWriterTest, AddRowWithDoublesFormats) {
  TableWriter table({"method", "a", "b"});
  table.AddRow("GARL", {0.99701, 0.5});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("0.9970"), std::string::npos);
}

TEST(TableWriterTest, CsvRoundTrip) {
  TableWriter table({"k", "v"});
  table.AddRow({"with,comma", "plain"});
  std::string path = "/tmp/garl_test_table.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "k,v");
  EXPECT_EQ(line2, "\"with,comma\",plain");
  std::remove(path.c_str());
}

TEST(TableWriterTest, EnsureDirectoryCreatesChain) {
  std::string dir = "/tmp/garl_test_dir/a/b";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  std::ofstream probe(dir + "/f.txt");
  EXPECT_TRUE(static_cast<bool>(probe));
}

// --- fs_util durable-write path (retry, fault hook, append) ----------------

RetryPolicy FastRetry(std::vector<int64_t>* sleeps = nullptr) {
  RetryPolicy policy;
  policy.sleep_fn = [sleeps](int64_t ms) {
    if (sleeps != nullptr) sleeps->push_back(ms);
  };
  return policy;
}

TEST(FsUtilTest, WriteFileDurableRecoversFromTransientFaults) {
  const std::string path = "/tmp/garl_fs_util_transient.bin";
  int attempts = 0;
  ScopedWriteFaultHook hook([&](std::string_view) {
    InjectedWriteFault fault;
    if (++attempts <= 2) fault.error_number = EIO;
    return fault;
  });
  std::vector<int64_t> sleeps;
  ASSERT_TRUE(WriteFileDurable(path, "payload", FastRetry(&sleeps)).ok());
  EXPECT_EQ(attempts, 3);
  // Exponential backoff: 1 ms, then 2 ms, before the succeeding attempt.
  EXPECT_EQ(sleeps, (std::vector<int64_t>{1, 2}));
  StatusOr<std::string> read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), "payload");
  std::remove(path.c_str());
}

TEST(FsUtilTest, WriteFileDurableSurfacesAPersistentFaultAsStatus) {
  const std::string path = "/tmp/garl_fs_util_persistent.bin";
  ScopedWriteFaultHook hook([](std::string_view) {
    return InjectedWriteFault{EIO, false};
  });
  Status status = WriteFileDurable(path, "payload", FastRetry());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("durable write failed after 5 attempts"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(FsUtilTest, ShortWriteNeverPublishesATornFile) {
  const std::string path = "/tmp/garl_fs_util_torn.bin";
  int attempts = 0;
  ScopedWriteFaultHook hook([&](std::string_view) {
    InjectedWriteFault fault;
    if (++attempts == 1) {
      fault.error_number = EIO;
      fault.short_write = true;  // crash model: torn temp file left behind
    }
    return fault;
  });
  ASSERT_TRUE(WriteFileDurable(path, "full contents", FastRetry()).ok());
  StatusOr<std::string> read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), "full contents");
  // The retry's O_TRUNC reopen + rename consumed the torn temp file.
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
  std::remove(path.c_str());
}

TEST(FsUtilTest, AppendFileRetriesWithoutDuplicatingOrDroppingBytes) {
  const std::string path = "/tmp/garl_fs_util_append.jsonl";
  StatusOr<AppendFile> file = AppendFile::Open(path, FastRetry());
  ASSERT_TRUE(file.ok());
  int attempts = 0;
  {
    ScopedWriteFaultHook hook([&](std::string_view) {
      InjectedWriteFault fault;
      if (++attempts == 1) {
        fault.error_number = EIO;
        fault.short_write = true;  // half the line reaches the fd, then EIO
      }
      return fault;
    });
    ASSERT_TRUE(file.value().Append("first line\n").ok());
  }
  ASSERT_TRUE(file.value().Append("second line\n").ok());
  StatusOr<std::string> read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  // Offset tracking resumes after the torn prefix: every byte exactly once.
  EXPECT_EQ(read_back.value(), "first line\nsecond line\n");
  std::remove(path.c_str());
}

TEST(FsUtilTest, AppendFilePersistentFaultReturnsStatusNotAbort) {
  const std::string path = "/tmp/garl_fs_util_append_fail.jsonl";
  StatusOr<AppendFile> file = AppendFile::Open(path, FastRetry());
  ASSERT_TRUE(file.ok());
  ScopedWriteFaultHook hook([](std::string_view) {
    return InjectedWriteFault{EIO, false};
  });
  Status status = file.value().Append("doomed\n");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("durable append failed"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(FsUtilTest, ScopedHookUninstallsOnDestruction) {
  const std::string path = "/tmp/garl_fs_util_scoped.bin";
  {
    ScopedWriteFaultHook hook([](std::string_view) {
      return InjectedWriteFault{EIO, false};
    });
    EXPECT_FALSE(AtomicWriteFile(path, "x").ok());
  }
  EXPECT_TRUE(AtomicWriteFile(path, "x").ok());
  std::remove(path.c_str());
}

TEST(FsUtilTest, FaultHookReceivesTheDestinationPath) {
  const std::string path = "/tmp/garl_fs_util_path.bin";
  std::string seen;
  ScopedWriteFaultHook hook([&](std::string_view p) {
    seen = std::string(p);
    return InjectedWriteFault{};
  });
  ASSERT_TRUE(AtomicWriteFile(path, "x").ok());
  // The hook sees the destination (not the temp file), so schedules can
  // target specific artifacts.
  EXPECT_EQ(seen, path);
  std::remove(path.c_str());
}

TEST(EnvFlagsTest, DefaultsWhenUnset) {
  unsetenv("GARL_TEST_FLAG");
  EXPECT_EQ(EnvInt("GARL_TEST_FLAG", 7), 7);
  EXPECT_EQ(EnvString("GARL_TEST_FLAG", "d"), "d");
}

TEST(EnvFlagsTest, ParsesInteger) {
  setenv("GARL_TEST_FLAG", "42", 1);
  EXPECT_EQ(EnvInt("GARL_TEST_FLAG", 7), 42);
  unsetenv("GARL_TEST_FLAG");
}

TEST(EnvFlagsTest, BadIntegerFallsBack) {
  setenv("GARL_TEST_FLAG", "4x", 1);
  EXPECT_EQ(EnvInt("GARL_TEST_FLAG", 7), 7);
  unsetenv("GARL_TEST_FLAG");
}

}  // namespace
}  // namespace garl
