#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "nn/mlp.h"
#include "nn/ops.h"
#include "nn/serialization.h"

namespace garl::nn {
namespace {

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::Zeros({5, 4});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{5, 3}));
}

TEST(LinearTest, VectorInputYieldsVector) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  Tensor y = layer.Forward(Tensor::Zeros({4}));
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3}));
}

TEST(LinearTest, ZeroInputGivesBias) {
  Rng rng(2);
  Linear layer(2, 2, rng);
  layer.bias().set({0}, 7.0f);
  layer.bias().set({1}, -1.0f);
  Tensor y = layer.Forward(Tensor::Zeros({2}));
  EXPECT_FLOAT_EQ(y.data()[0], 7.0f);
  EXPECT_FLOAT_EQ(y.data()[1], -1.0f);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(3);
  Linear layer(2, 2, rng, /*with_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  Tensor y = layer.Forward(Tensor::Zeros({2}));
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);
}

TEST(LinearTest, GradientsReachParameters) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::FromVector({3}, {1, 2, 3});
  Tensor loss = Sum(Square(layer.Forward(x)));
  loss.Backward();
  float weight_grad_norm = 0;
  for (float g : layer.weight().grad()) weight_grad_norm += g * g;
  EXPECT_GT(weight_grad_norm, 0.0f);
}

TEST(MlpTest, ParametersCount) {
  Rng rng(5);
  Mlp mlp({4, 8, 2}, Activation::kTanh, rng);
  // Two Linear layers, each weight + bias.
  EXPECT_EQ(mlp.Parameters().size(), 4u);
  EXPECT_EQ(mlp.NumParameters(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(MlpTest, ForwardShapes) {
  Rng rng(6);
  Mlp mlp({4, 8, 8, 2}, Activation::kRelu, rng);
  EXPECT_EQ(mlp.Forward(Tensor::Zeros({4})).shape(),
            (std::vector<int64_t>{2}));
  EXPECT_EQ(mlp.Forward(Tensor::Zeros({7, 4})).shape(),
            (std::vector<int64_t>{7, 2}));
}

TEST(MlpTest, ActivateOutputBoundsTanh) {
  Rng rng(7);
  Mlp mlp({2, 4, 3}, Activation::kTanh, rng, /*activate_output=*/true);
  Tensor y = mlp.Forward(Tensor::FromVector({2}, {100, -100}));
  for (float v : y.data()) {
    EXPECT_LE(v, 1.0f);
    EXPECT_GE(v, -1.0f);
  }
}

TEST(ActivateTest, AllVariants) {
  Tensor x = Tensor::FromVector({2}, {-1, 1});
  EXPECT_EQ(Activate(x, Activation::kNone).data(), x.data());
  EXPECT_EQ(Activate(x, Activation::kRelu).data(),
            (std::vector<float>{0, 1}));
  EXPECT_NEAR(Activate(x, Activation::kSigmoid).data()[1], 0.7310586f,
              1e-5f);
}

TEST(LstmCellTest, StateShapesAndEvolution) {
  Rng rng(8);
  LstmCell cell(3, 5, rng);
  auto state = cell.InitialState();
  EXPECT_EQ(state.h.shape(), (std::vector<int64_t>{5}));
  auto next = cell.Forward(Tensor::FromVector({3}, {1, 0, -1}), state);
  EXPECT_EQ(next.h.shape(), (std::vector<int64_t>{5}));
  // A nonzero input must change the state.
  float diff = 0;
  for (int i = 0; i < 5; ++i) diff += std::fabs(next.h.data()[i]);
  EXPECT_GT(diff, 0.0f);
}

TEST(LstmCellTest, HiddenStaysBounded) {
  Rng rng(9);
  LstmCell cell(2, 4, rng);
  auto state = cell.InitialState();
  for (int t = 0; t < 50; ++t) {
    state = cell.Forward(Tensor::FromVector({2}, {5, -5}), state);
  }
  for (float v : state.h.data()) {
    EXPECT_LE(std::fabs(v), 1.0f);  // |h| <= |tanh(c)| <= 1
  }
}

TEST(LstmCellTest, GradFlowsThroughTime) {
  Rng rng(10);
  LstmCell cell(2, 3, rng);
  auto state = cell.InitialState();
  Tensor x = Tensor::FromVector({2}, {0.5f, -0.5f});
  for (int t = 0; t < 3; ++t) state = cell.Forward(x, state);
  Sum(Square(state.h)).Backward();
  float norm = 0;
  for (const Tensor& p : cell.Parameters()) {
    for (float g : p.grad()) norm += g * g;
  }
  EXPECT_GT(norm, 0.0f);
}

TEST(Conv2dLayerTest, OutputSizeFormula) {
  Rng rng(11);
  Conv2dLayer layer(1, 4, /*kernel=*/3, /*stride=*/2, /*padding=*/1, rng);
  EXPECT_EQ(layer.OutputSize(15), 8);
  Tensor out = layer.Forward(Tensor::Zeros({1, 1, 15, 15}));
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 4, 8, 8}));
}

TEST(Conv2dLayerTest, ParameterCount) {
  Rng rng(12);
  Conv2dLayer layer(3, 8, 3, 1, 0, rng);
  EXPECT_EQ(layer.Parameters().size(), 2u);
  EXPECT_EQ(layer.Parameters()[0].numel(), 8 * 3 * 3 * 3);
}

TEST(SerializationTest, RoundTripPreservesValues) {
  Rng rng(13);
  Mlp mlp({3, 4, 2}, Activation::kTanh, rng);
  std::string path = "/tmp/garl_test_params.bin";
  ASSERT_TRUE(SaveParameters(mlp.Parameters(), path).ok());

  Rng rng2(99);  // different init
  Mlp loaded({3, 4, 2}, Activation::kTanh, rng2);
  std::vector<Tensor> params = loaded.Parameters();
  ASSERT_TRUE(LoadParameters(path, params).ok());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i].data(), mlp.Parameters()[i].data());
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, ShapeMismatchIsError) {
  Rng rng(14);
  Mlp small({2, 2}, Activation::kNone, rng);
  std::string path = "/tmp/garl_test_params2.bin";
  ASSERT_TRUE(SaveParameters(small.Parameters(), path).ok());
  Mlp big({3, 3}, Activation::kNone, rng);
  std::vector<Tensor> params = big.Parameters();
  EXPECT_FALSE(LoadParameters(path, params).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsError) {
  std::vector<Tensor> params;
  EXPECT_FALSE(LoadParameters("/tmp/does_not_exist_garl.bin", params).ok());
}

}  // namespace
}  // namespace garl::nn
