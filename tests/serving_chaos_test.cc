// Chaos coverage for the overload-safe serving layer (serve::PolicyServer +
// sim serving fault schedules). Locks down the acceptance properties:
//   (a) a full Submit queue resolves victims with kUnavailable and golden,
//       seed-deterministic shed counts (oldest-first under kShedOldest);
//   (b) expired deadlines complete kDeadlineExceeded at dequeue and never
//       consume a plan Execute;
//   (c) hot reload under injected checkpoint-read faults either swaps fully
//       (every result in a batch carries the new plan_version) or rolls back
//       fully (old version everywhere) — never a mixed batch;
//   (d) completed-request bytes are identical across GARL_NUM_THREADS {1,4}
//       and batch packings while stalls and malformed-observation bursts
//       from a seeded sim::ServingFaultPlan are hammering the server;
// plus the circuit-breaker lifecycle (deterministic trip, half-open probes,
// deterministic recovery) behind them.
//
// Every server here gets a private MetricsRegistry: the tests assert golden
// counter values, which the process-global registry would accumulate across
// tests.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/garl_extractor.h"
#include "core/serving_plan.h"
#include "env/world.h"
#include "nn/serialization.h"
#include "obs/metrics.h"
#include "rl/checkpoint.h"
#include "rl/feature_policy.h"
#include "rl/inference.h"
#include "serve/policy_server.h"
#include "sim/faults.h"

namespace garl {
namespace {

env::CampusSpec TinyCampus() {
  env::CampusSpec campus;
  campus.name = "tiny";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  campus.sensors.push_back({{260, 190}, 1200.0});
  campus.sensors.push_back({{200, 320}, 900.0});
  return campus;
}

env::WorldParams TinyParams() {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 16;
  params.release_slots = 2;
  return params;
}

struct Fixture {
  explicit Fixture(uint64_t seed = 7)
      : world(TinyCampus(), TinyParams()),
        context(rl::MakeEnvContext(world)),
        rng(seed) {
    core::GarlConfig config;
    config.mc_gcn.layers = 2;
    config.e_comm.layers = 2;
    policy = std::make_unique<rl::FeatureUgvPolicy>(
        std::make_unique<core::GarlExtractor>(context, config, rng), context,
        rl::FeaturePolicyOptions{}, rng);
  }

  std::vector<std::vector<env::UgvObservation>> Requests(int64_t n) {
    std::vector<std::vector<env::UgvObservation>> requests;
    auto episode = std::make_unique<env::World>(TinyCampus(), TinyParams());
    const std::vector<env::UavAction> idle(
        static_cast<size_t>(episode->num_uavs()));
    for (int64_t r = 0; r < n; ++r) {
      if (episode->Done()) {
        episode = std::make_unique<env::World>(TinyCampus(), TinyParams());
      }
      requests.push_back({episode->ObserveUgv(0), episode->ObserveUgv(1)});
      std::vector<env::UgvAction> actions(2);
      for (int64_t u = 0; u < 2; ++u) {
        actions[static_cast<size_t>(u)].release = (episode->slot() % 3 == 2);
        actions[static_cast<size_t>(u)].target_stop =
            (episode->slot() + u) % context.num_stops;
      }
      episode->Step(actions, idle);
    }
    return requests;
  }

  env::World world;
  rl::EnvContext context;
  Rng rng;
  std::unique_ptr<rl::FeatureUgvPolicy> policy;
};

void ExpectResultsBitIdentical(const serve::ServeResult& a,
                               const serve::ServeResult& b) {
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  ASSERT_EQ(a.actions.size(), b.actions.size());
  for (size_t u = 0; u < a.actions.size(); ++u) {
    EXPECT_EQ(a.actions[u].release, b.actions[u].release);
    EXPECT_EQ(a.actions[u].target_stop, b.actions[u].target_stop);
  }
  ASSERT_EQ(a.values.size(), b.values.size());
  ASSERT_EQ(0, std::memcmp(a.values.data(), b.values.data(),
                           a.values.size() * sizeof(float)));
}

// Blocks the dispatcher at the top of its drain loop until unblocked, giving
// tests a deterministic window to fill (or expire) the Submit queue.
// Unblocking is one-way; the gate never closes again.
class DispatchGate {
 public:
  std::function<void()> Fn() {
    return [this] {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return open_; });
    };
  }

  void Unblock() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

std::string TestDir(const std::string& name) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Valid v2 checkpoint holding `policy`'s parameters (no Adam state needed on
// the inference load path).
std::string MakeCheckpoint(const std::string& name,
                           const rl::FeatureUgvPolicy& policy,
                           int64_t episode) {
  namespace fs = std::filesystem;
  std::string dir = TestDir(name);
  const std::string sub = dir + "/ckpt_00000005";
  fs::create_directories(sub);
  Status save = nn::SaveParameters(policy.Parameters(),
                                   sub + "/" + rl::kUgvParamsFile);
  GARL_CHECK_MSG(save.ok(), save.ToString());
  Status manifest = rl::WriteCheckpointManifest(
      dir, {rl::CheckpointInfo{"ckpt_00000005", episode}});
  GARL_CHECK_MSG(manifest.ok(), manifest.ToString());
  return dir;
}

// A malformed joint observation: out-of-range stop index, rejected by
// ServingPlan::Execute with kInvalidArgument (fails its own request only).
void Corrupt(std::vector<env::UgvObservation>* request, int64_t num_stops) {
  request->front().current_stop = num_stops + 3;
}

// ---- (a) Admission control under a blocked dispatcher ----------------------

TEST(ServingChaosTest, FullQueueShedsOldestWithGoldenSeededCounts) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Seeded arrival bursts: total submissions are a pure function of the
  // seed, so the shed count below is a golden constant.
  Rng arrivals(/*seed=*/2024);
  int64_t total = 0;
  std::vector<int64_t> bursts;
  for (int b = 0; b < 5; ++b) {
    bursts.push_back(arrivals.UniformInt(1, 8));
    total += bursts.back();
  }
  constexpr int64_t kDepth = 4;
  ASSERT_GT(total, kDepth) << "seed must overflow the queue";

  obs::MetricsRegistry registry;
  DispatchGate gate;
  serve::PolicyServerOptions options;
  options.metrics = &registry;
  options.max_queue_depth = kDepth;
  options.overflow = serve::OverflowPolicy::kShedOldest;
  options.dispatch_gate = gate.Fn();
  serve::PolicyServer server(&plan.value(), options);

  const auto request = f.Requests(1).front();
  std::vector<std::future<serve::ServeResult>> futures;
  for (int64_t burst : bursts) {
    for (int64_t i = 0; i < burst; ++i) {
      futures.push_back(server.Submit(request, /*deadline_us=*/-1));
    }
  }
  // Dispatcher is parked in the gate: admission decisions are complete and
  // deterministic before anything is served.
  const int64_t expect_shed = total - kDepth;
  EXPECT_EQ(server.Health().shed, expect_shed);
  EXPECT_EQ(server.Health().queue_depth, kDepth);

  // Oldest-first: exactly the first `expect_shed` futures hold kUnavailable,
  // already resolved while the dispatcher is still blocked.
  for (int64_t i = 0; i < expect_shed; ++i) {
    ASSERT_EQ(futures[static_cast<size_t>(i)].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "shed future " << i << " not resolved under the queue lock";
    EXPECT_EQ(futures[static_cast<size_t>(i)].get().status.code(),
              StatusCode::kUnavailable);
  }

  gate.Unblock();
  for (int64_t i = expect_shed; i < total; ++i) {
    const serve::ServeResult result = futures[static_cast<size_t>(i)].get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }
  EXPECT_EQ(server.served(), kDepth);
  EXPECT_EQ(server.Health().shed, expect_shed);
  EXPECT_EQ(server.Health().rejected, 0);
}

TEST(ServingChaosTest, FullQueueRejectsNewestDeterministically) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  obs::MetricsRegistry registry;
  DispatchGate gate;
  serve::PolicyServerOptions options;
  options.metrics = &registry;
  options.max_queue_depth = 3;
  options.overflow = serve::OverflowPolicy::kRejectNewest;
  options.dispatch_gate = gate.Fn();
  serve::PolicyServer server(&plan.value(), options);

  const auto request = f.Requests(1).front();
  std::vector<std::future<serve::ServeResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(server.Submit(request, /*deadline_us=*/-1));
  }
  // The first 3 are queued; submissions 4..10 bounce immediately.
  for (size_t i = 3; i < 10; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(futures[i].get().status.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(server.Health().rejected, 7);
  EXPECT_EQ(server.Health().shed, 0);

  gate.Unblock();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(futures[i].get().status.ok());
  }
  EXPECT_EQ(server.served(), 3);
}

// ---- (b) Deadlines are honored at dequeue, before any Execute --------------

TEST(ServingChaosTest, ExpiredDeadlinesNeverReachExecute) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  std::atomic<int64_t> fake_now_ns{1'000'000'000};
  obs::MetricsRegistry registry;
  DispatchGate gate;
  serve::PolicyServerOptions options;
  options.metrics = &registry;
  options.default_deadline_us = 250;  // server default, exercised below
  options.dispatch_gate = gate.Fn();
  options.now_fn = [&fake_now_ns] { return fake_now_ns.load(); };
  serve::PolicyServer server(&plan.value(), options);

  const auto request = f.Requests(1).front();
  // Three deadline flavors, queued while the dispatcher is parked:
  //   [0] explicit 100us deadline   -> expires
  //   [1] server default (250us)    -> expires
  //   [2] no deadline (-1)          -> must be served
  std::vector<std::future<serve::ServeResult>> futures;
  futures.push_back(server.Submit(request, /*deadline_us=*/100));
  futures.push_back(server.Submit(request, /*deadline_us=*/0));
  futures.push_back(server.Submit(request, /*deadline_us=*/-1));

  fake_now_ns += 5'000'000;  // +5ms: far past both deadlines
  gate.Unblock();

  EXPECT_EQ(futures[0].get().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(futures[1].get().status.code(), StatusCode::kDeadlineExceeded);
  const serve::ServeResult live = futures[2].get();
  EXPECT_TRUE(live.status.ok()) << live.status.ToString();

  // The expired pair consumed no Execute: only the live request was served.
  EXPECT_EQ(server.served(), 1);
  EXPECT_EQ(server.Health().deadline_misses, 2);
  EXPECT_EQ(server.deadline_miss_histogram().count(), 2);
  EXPECT_EQ(server.Health().execute_failures, 0);
}

// ---- Circuit breaker: deterministic trip, probe, and recovery --------------

TEST(ServingChaosTest, BreakerTripsProbesAndRecoversDeterministically) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  obs::MetricsRegistry registry;
  serve::PolicyServerOptions options;
  options.metrics = &registry;
  options.breaker_failure_threshold = 3;
  options.breaker_probe_interval = 4;
  options.breaker_probe_successes = 2;
  serve::PolicyServer server(&plan.value(), options);

  auto good = f.Requests(1).front();
  auto bad = good;
  Corrupt(&bad, f.context.num_stops);

  // Three consecutive malformed requests trip the breaker.
  std::vector<serve::ServeResult> results;
  server.ServeBatch({bad, bad, bad}, &results);
  for (const auto& result : results) {
    EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(server.Health().state, serve::HealthState::kDegraded);
  EXPECT_EQ(server.Health().breaker_trips, 1);
  EXPECT_EQ(server.Health().execute_failures, 3);

  // Degraded batch of 8 good requests. Admission is decided sequentially
  // before the fan-out, so with probe_interval=4 exactly indices 0 and 4 are
  // half-open probes; the other 6 fast-reject with kUnavailable. Both probes
  // succeed (probe_successes=2), closing the breaker after the batch.
  server.ServeBatch({good, good, good, good, good, good, good, good},
                    &results);
  ASSERT_EQ(results.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    if (i == 0 || i == 4) {
      EXPECT_TRUE(results[i].status.ok()) << i << ": "
                                          << results[i].status.ToString();
    } else {
      EXPECT_EQ(results[i].status.code(), StatusCode::kUnavailable) << i;
    }
  }
  EXPECT_EQ(server.Health().state, serve::HealthState::kServing);
  EXPECT_EQ(server.Health().rejected, 6);

  // Recovered: the next batch is fully admitted.
  server.ServeBatch({good, good, good}, &results);
  for (const auto& result : results) {
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }
  EXPECT_EQ(server.Health().breaker_trips, 1);
}

// ---- (c) Hot reload under checkpoint-read faults: all-or-nothing -----------

TEST(ServingChaosTest, ReloadSwapsFullyOrRollsBackFullyUnderFsFaults) {
  Fixture serving(/*seed=*/7);
  Fixture trained(/*seed=*/99);
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*serving.policy, serving.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string good_dir = MakeCheckpoint(
      "serving_chaos_reload_good", *trained.policy, /*episode=*/11);

  // The reload target policy is a third instance so a failed load cannot
  // disturb the fixtures.
  Fixture reload_target(/*seed=*/5);
  obs::MetricsRegistry registry;
  serve::PolicyServerOptions options;
  options.metrics = &registry;
  options.reload_policy = reload_target.policy.get();
  options.reload_context = &serving.context;
  options.probe_request = serving.Requests(1).front();
  serve::PolicyServer server(&plan.value(), options);

  auto requests = serving.Requests(6);
  std::vector<serve::ServeResult> results;

  // Rollback: a checkpoint that cannot be read (every attempt faulted, cap
  // high enough that no attempt recovers within one Reload call).
  sim::ServingFaultConfig always_fail;
  always_fail.enabled = true;
  always_fail.seed = 3;
  always_fail.read_fault_prob = 1.0;
  always_fail.read_max_consecutive = 1000;
  {
    sim::ScheduledFsReadFaults faults(always_fail, /*base_seed=*/17);
    Status reload = server.Reload(good_dir);
    EXPECT_FALSE(reload.ok());
  }
  EXPECT_EQ(server.plan_version(), 1);
  EXPECT_EQ(server.Health().reload_failures, 1);
  EXPECT_EQ(server.Health().reloads, 0);
  server.ServeBatch(requests, &results);
  for (const auto& result : results) {
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.plan_version, 1) << "rolled-back reload leaked a version";
  }

  // Transient faults: each path fails at most twice in a row, so a bounded
  // retry loop must land the swap. Between attempts the server keeps serving
  // batches whose results all carry one uniform version — never mixed.
  sim::ServingFaultConfig transient;
  transient.enabled = true;
  transient.seed = 3;
  transient.read_fault_prob = 1.0;
  transient.read_max_consecutive = 2;
  int64_t failed_attempts = 0;
  {
    sim::ScheduledFsReadFaults faults(transient, /*base_seed=*/17);
    bool swapped = false;
    for (int attempt = 0; attempt < 10 && !swapped; ++attempt) {
      swapped = server.Reload(good_dir).ok();
      if (!swapped) ++failed_attempts;
      server.ServeBatch(requests, &results);
      const int64_t version = results.front().plan_version;
      EXPECT_EQ(version, swapped ? 2 : 1);
      for (const auto& result : results) {
        ASSERT_TRUE(result.status.ok()) << result.status.ToString();
        EXPECT_EQ(result.plan_version, version) << "mixed-version batch";
      }
    }
    ASSERT_TRUE(swapped) << "transient read faults starved Reload for "
                            "10 attempts (cap is 2 consecutive per path)";
  }
  EXPECT_GT(failed_attempts, 0) << "fault injection never fired";
  EXPECT_EQ(server.plan_version(), 2);
  EXPECT_EQ(server.Health().reloads, 1);
  EXPECT_EQ(server.Health().reload_failures, 1 + failed_attempts);

  // The swapped plan serves the trained policy's bytes: a fresh server over
  // a plan compiled directly from the trained fixture must agree.
  StatusOr<core::ServingPlan> want_plan =
      core::ServingPlan::Compile(*trained.policy, trained.context);
  ASSERT_TRUE(want_plan.ok()) << want_plan.status().ToString();
  serve::PolicyServer want_server(&want_plan.value());
  std::vector<serve::ServeResult> want;
  want_server.ServeBatch(requests, &want);
  server.ServeBatch(requests, &results);
  ASSERT_EQ(want.size(), results.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ExpectResultsBitIdentical(want[i], results[i]);
  }
}

TEST(ServingChaosTest, ReloadValidationRejectsCorruptCheckpoint) {
  Fixture serving(/*seed=*/7);
  Fixture trained(/*seed=*/99);
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*serving.policy, serving.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string dir = MakeCheckpoint("serving_chaos_reload_corrupt",
                                   *trained.policy, /*episode=*/11);
  // Flip one byte mid-file: the CRC check must fail the load, and the old
  // plan must keep serving.
  const std::string params_path = dir + "/ckpt_00000005/" + rl::kUgvParamsFile;
  std::fstream file(params_path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(0, std::ios::end);
  const int64_t size = file.tellg();
  ASSERT_GT(size, 128);
  char byte = 0;
  file.seekg(size / 2);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(size / 2);
  file.write(&byte, 1);
  file.close();

  Fixture reload_target(/*seed=*/5);
  obs::MetricsRegistry registry;
  serve::PolicyServerOptions options;
  options.metrics = &registry;
  options.reload_policy = reload_target.policy.get();
  options.reload_context = &serving.context;
  options.probe_request = serving.Requests(1).front();
  serve::PolicyServer server(&plan.value(), options);

  EXPECT_FALSE(server.Reload(dir).ok());
  EXPECT_EQ(server.plan_version(), 1);
  std::vector<serve::ServeResult> results;
  server.ServeBatch(serving.Requests(2), &results);
  for (const auto& result : results) {
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.plan_version, 1);
  }
}

// ---- (d) Bit-identical completed results under chaos -----------------------

TEST(ServingChaosTest, CompletedResultsBitIdenticalAcrossThreadsUnderFaults) {
  Fixture f;
  StatusOr<core::ServingPlan> plan =
      core::ServingPlan::Compile(*f.policy, f.context);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  constexpr int64_t kRequests = 48;
  auto requests = f.Requests(kRequests);

  // Seeded chaos schedule: worker stalls plus malformed-observation bursts.
  sim::ServingFaultConfig config;
  config.enabled = true;
  config.seed = 11;
  config.stall_prob = 0.25;
  config.stall_us = 50;
  config.malform_prob = 0.1;
  config.malform_burst = 2;
  const sim::ServingFaultPlan fault_plan =
      sim::BuildServingFaultPlan(config, /*base_seed=*/17, kRequests);
  ASSERT_GT(fault_plan.StallCount(), 0) << "seed produced no stalls";
  ASSERT_GT(fault_plan.MalformCount(), 0) << "seed produced no malforms";
  // The schedule itself is golden for (base_seed=17, seed=11, n=48): it must
  // never drift, or the packing comparisons below compare different streams.
  EXPECT_EQ(fault_plan.Digest(),
            sim::BuildServingFaultPlan(config, 17, kRequests).Digest());

  // Bake the malform events into the request pool (the stream the server
  // actually sees); stalls go through worker_stall_hook.
  std::vector<bool> malformed(static_cast<size_t>(kRequests), false);
  for (const sim::ServingRequestFault& event : fault_plan.events) {
    if (!event.malform) continue;
    malformed[static_cast<size_t>(event.request)] = true;
    Corrupt(&requests[static_cast<size_t>(event.request)],
            f.context.num_stops);
  }

  const int64_t saved_threads = ThreadPool::Global().num_threads();
  ThreadPool::SetGlobalThreads(1);

  // Reference run: single thread, one whole-stream batch, no stalls. The
  // breaker threshold is high so malformed requests never trip degradation
  // here — bounded-degradation behavior has its own tests above.
  std::vector<serve::ServeResult> reference;
  {
    obs::MetricsRegistry registry;
    serve::PolicyServerOptions options;
    options.metrics = &registry;
    options.max_batch = kRequests;
    options.breaker_failure_threshold = 1 << 20;
    serve::PolicyServer server(&plan.value(), options);
    server.ServeBatch(requests, &reference);
  }
  ASSERT_EQ(reference.size(), static_cast<size_t>(kRequests));
  for (int64_t i = 0; i < kRequests; ++i) {
    const auto& result = reference[static_cast<size_t>(i)];
    if (malformed[static_cast<size_t>(i)]) {
      ASSERT_EQ(result.status.code(), StatusCode::kInvalidArgument) << i;
    } else {
      ASSERT_TRUE(result.status.ok()) << i << ": " << result.status.ToString();
    }
  }

  for (int64_t threads : {int64_t{1}, int64_t{4}}) {
    ThreadPool::SetGlobalThreads(threads);
    for (int64_t batch : {int64_t{1}, int64_t{7}, int64_t{64}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      obs::MetricsRegistry registry;
      sim::ServingStallInjector injector(&fault_plan);
      serve::PolicyServerOptions options;
      options.metrics = &registry;
      options.max_batch = batch;
      options.breaker_failure_threshold = 1 << 20;
      options.worker_stall_hook = injector.Hook();
      serve::PolicyServer server(&plan.value(), options);

      std::vector<serve::ServeResult> results;
      std::vector<serve::ServeResult> chunk_results;
      for (int64_t begin = 0; begin < kRequests; begin += batch) {
        const int64_t end = std::min(kRequests, begin + batch);
        std::vector<std::vector<env::UgvObservation>> chunk(
            requests.begin() + begin, requests.begin() + end);
        server.ServeBatch(chunk, &chunk_results);
        for (auto& result : chunk_results) {
          results.push_back(std::move(result));
        }
      }
      ASSERT_EQ(results.size(), static_cast<size_t>(kRequests));

      // Every Execute (including malformed ones) consults the stall
      // schedule exactly once, so the stall total is packing-invariant.
      EXPECT_EQ(injector.stalls(), fault_plan.StallCount());

      for (int64_t i = 0; i < kRequests; ++i) {
        const auto& got = results[static_cast<size_t>(i)];
        const auto& want = reference[static_cast<size_t>(i)];
        if (malformed[static_cast<size_t>(i)]) {
          EXPECT_EQ(got.status.code(), want.status.code()) << i;
        } else {
          ExpectResultsBitIdentical(want, got);
        }
      }
    }
  }
  ThreadPool::SetGlobalThreads(saved_threads);
}

}  // namespace
}  // namespace garl
