#include <gtest/gtest.h>

#include <cmath>

#include "env/campus_factory.h"
#include "env/world.h"

namespace garl::env {
namespace {

// Small synthetic campus: 400x400 cross roads, one building, two sensors.
CampusSpec TinyCampus() {
  CampusSpec campus;
  campus.name = "tiny";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.buildings.push_back({40, 40, 110, 110});
  campus.sensors.push_back({{120, 200}, 1000.0});  // on the west road
  campus.sensors.push_back({{200, 320}, 1200.0});  // on the north road
  return campus;
}

WorldParams TinyParams() {
  WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 30;
  params.release_slots = 3;
  return params;
}

TEST(WorldTest, InitialConfiguration) {
  World world(TinyCampus(), TinyParams());
  EXPECT_EQ(world.num_ugvs(), 2);
  EXPECT_EQ(world.num_uavs(), 2);
  EXPECT_EQ(world.slot(), 0);
  EXPECT_FALSE(world.Done());
  // All UGVs start at the stop nearest the campus centre.
  for (const UgvState& ugv : world.ugvs()) {
    EXPECT_NEAR(ugv.position.x, 200.0, 1.0);
    EXPECT_NEAR(ugv.position.y, 200.0, 1.0);
  }
  for (const UavState& uav : world.uavs()) {
    EXPECT_FALSE(uav.airborne);
    EXPECT_DOUBLE_EQ(uav.energy_kj, world.params().uav_energy_kj);
  }
}

TEST(WorldTest, UgvMovesAlongRoadTowardTarget) {
  World world(TinyCampus(), TinyParams());
  int64_t start = world.ugvs()[0].current_stop;
  // Target: a far stop to the east along the horizontal road.
  int64_t target = world.stops().NearestStop({400, 200});
  ASSERT_NE(start, target);
  std::vector<UgvAction> ugv_actions(2);
  ugv_actions[0] = {false, target};
  ugv_actions[1] = {false, start};  // stay
  std::vector<UavAction> uav_actions(2);
  world.Step(ugv_actions, uav_actions);
  // 200 m away, budget 400 m/slot: should arrive within one slot.
  EXPECT_EQ(world.ugvs()[0].current_stop, target);
  EXPECT_NEAR(world.ugvs()[0].distance_traveled, 200.0, 20.0);
  EXPECT_EQ(world.ugvs()[1].current_stop, start);
}

TEST(WorldTest, UgvRespectsSpeedLimit) {
  CampusSpec campus = TinyCampus();
  WorldParams params = TinyParams();
  params.ugv_max_dist = 150.0;  // less than one 200 m leg? stops allow 100m hops
  World world(campus, params);
  int64_t target = world.stops().NearestStop({400, 200});
  std::vector<UgvAction> ugv_actions(2);
  ugv_actions[0] = {false, target};
  ugv_actions[1] = {false, world.ugvs()[1].current_stop};
  std::vector<UavAction> uav_actions(2);
  world.Step(ugv_actions, uav_actions);
  EXPECT_LE(world.ugvs()[0].distance_traveled, 150.0 + 1e-6);
  EXPECT_NE(world.ugvs()[0].current_stop, target);  // not there yet
}

TEST(WorldTest, ReleaseLaunchesAndRecoversUavs) {
  World world(TinyCampus(), TinyParams());
  std::vector<UgvAction> release(2);
  release[0] = {true, -1};
  release[1] = {true, -1};
  std::vector<UavAction> hover(2);
  world.Step(release, hover);
  EXPECT_TRUE(world.UavAirborne(0));
  EXPECT_TRUE(world.UavAirborne(1));
  EXPECT_FALSE(world.UgvNeedsAction(0));
  EXPECT_EQ(world.total_releases(), 2);
  // The window spans release_slots slots including the launch slot; two
  // more steps complete it. Pass non-release actions so the UGVs do not
  // immediately relaunch once free.
  std::vector<UgvAction> stay(2);
  stay[0] = {false, world.ugvs()[0].current_stop};
  stay[1] = {false, world.ugvs()[1].current_stop};
  for (int t = 0; t < 2; ++t) {
    ASSERT_TRUE(world.UavAirborne(0));
    world.Step(stay, hover);  // UGV entries ignored while waiting
  }
  EXPECT_FALSE(world.UavAirborne(0));
  EXPECT_TRUE(world.UgvNeedsAction(0));
  EXPECT_DOUBLE_EQ(world.uavs()[0].energy_kj, world.params().uav_energy_kj);
}

TEST(WorldTest, UavCollectsDataWithinRange) {
  World world(TinyCampus(), TinyParams());
  std::vector<UgvAction> release(2);
  release[0] = {true, -1};
  release[1] = {false, world.ugvs()[1].current_stop};
  // Sensor 1 at (200,320) is 120 m north of the start stop (200,200);
  // flying 100 m north puts the UAV within the 60 m sensing range in the
  // same slot, so collection starts immediately.
  std::vector<UavAction> uav_actions(2);
  uav_actions[0] = {0.0, 100.0};  // fly north
  StepResult r1 = world.Step(release, uav_actions);
  EXPECT_GT(r1.ugv_rewards[0], 0.0);
  EXPECT_GT(r1.uav_rewards[0], 0.0);
  // Hovering keeps collecting on the following slot.
  uav_actions[0] = {0.0, 0.0};
  StepResult r2 = world.Step(release, uav_actions);
  EXPECT_GT(r2.ugv_rewards[0], 0.0);
  double remaining = world.sensors()[1].remaining_mb;
  EXPECT_LT(remaining, 1200.0);
}

TEST(WorldTest, SensorNeverGoesNegative) {
  World world(TinyCampus(), TinyParams());
  std::vector<UgvAction> release(2, {true, -1});
  std::vector<UavAction> north(2);
  north[0] = {0.0, 100.0};
  north[1] = {0.0, 100.0};
  for (int t = 0; t < 20 && !world.Done(); ++t) {
    world.Step(release, north);
  }
  for (const SensorState& s : world.sensors()) {
    EXPECT_GE(s.remaining_mb, 0.0);
    EXPECT_LE(s.remaining_mb, s.initial_mb);
  }
}

TEST(WorldTest, UavBlockedByBuildingGetsPenalty) {
  CampusSpec campus = TinyCampus();
  // Building directly north of the start stop.
  campus.buildings.clear();
  campus.buildings.push_back({150, 240, 250, 340});
  World world(campus, TinyParams());
  std::vector<UgvAction> release(2, {true, -1});
  std::vector<UavAction> north(2);
  north[0] = {0.0, 100.0};
  StepResult r = world.Step(release, north);
  EXPECT_LT(r.uav_rewards[0], 0.0);  // crash penalty
  // UAV stopped south of the building wall.
  EXPECT_LT(world.uavs()[0].position.y, 240.0);
}

TEST(WorldTest, EnergyAccountingConsistent) {
  World world(TinyCampus(), TinyParams());
  std::vector<UgvAction> release(2, {true, -1});
  std::vector<UavAction> east(2);
  east[0] = {100.0, 0.0};
  east[1] = {-100.0, 0.0};
  for (int t = 0; t < 8 && !world.Done(); ++t) world.Step(release, east);
  EpisodeMetrics m = world.Metrics();
  EXPECT_GT(m.energy_ratio, 0.0);
  EXPECT_LE(m.energy_ratio, 1.0);
  // Distance flown * eta == consumed energy.
  double flown = 0;
  for (const UavState& uav : world.uavs()) flown += uav.distance_flown;
  EXPECT_GT(flown, 0.0);
}

TEST(WorldTest, BatteryEmptyForcesEarlyLanding) {
  CampusSpec campus = TinyCampus();
  WorldParams params = TinyParams();
  params.uav_energy_kj = 1.0;  // 100 m of flight only
  params.release_slots = 5;
  World world(campus, params);
  std::vector<UgvAction> release(2, {true, -1});
  std::vector<UavAction> east(2);
  east[0] = {100.0, 0.0};
  world.Step(release, east);  // consumes the full 1 kJ
  EXPECT_FALSE(world.UavAirborne(0));  // forced return before window end
  EXPECT_DOUBLE_EQ(world.uavs()[0].energy_kj, 1.0);  // recharged
}

TEST(WorldTest, EffectiveReleaseCountedOnlyWithData) {
  World world(TinyCampus(), TinyParams());
  std::vector<UgvAction> release(2, {true, -1});
  std::vector<UavAction> idle(2);  // hover: no data in range at start stop
  for (int t = 0; t < 4; ++t) world.Step(release, idle);
  // Releases happened (twice per UGV cycle) but nothing was collected.
  EXPECT_GT(world.total_releases(), 0);
  EXPECT_EQ(world.effective_releases(), 0);
  EXPECT_DOUBLE_EQ(world.Metrics().cooperation_factor, 0.0);
}

TEST(WorldTest, ObservationMasksUnseenStops) {
  World world(TinyCampus(), TinyParams());
  UgvObservation obs = world.ObserveUgv(0);
  int64_t num_stops = world.stops().num_stops();
  EXPECT_EQ(obs.stop_features.shape(),
            (std::vector<int64_t>{num_stops, 3}));
  int unseen = 0, seen = 0;
  for (int64_t b = 0; b < num_stops; ++b) {
    float d = obs.stop_features.at({b, 2});
    if (d < 0.0f) ++unseen;
    else ++seen;
  }
  EXPECT_GT(unseen, 0);  // far stops start masked
  EXPECT_GT(seen, 0);    // stops near the start are visible
}

TEST(WorldTest, KnowledgeGoesStaleNotOmniscient) {
  World world(TinyCampus(), TinyParams());
  // UGV 0 stays at centre; UGV 1 drives west and releases near sensor 0.
  int64_t west = world.stops().NearestStop({100, 200});
  std::vector<UgvAction> actions(2);
  std::vector<UavAction> uav_actions(2);
  actions[0] = {false, world.ugvs()[0].current_stop};
  actions[1] = {false, west};
  world.Step(actions, uav_actions);
  actions[1] = {true, -1};
  // UAV 1 hovers right next to sensor 0 (120,200): collect for 3 slots.
  uav_actions[1] = {-60.0, 0.0};
  int64_t sensor_stop = world.stops().NearestStop({100, 200});
  double before = world.ObserveUgv(0).stop_features.at({sensor_stop, 2});
  for (int t = 0; t < 3; ++t) world.Step(actions, uav_actions);
  // UGV 1 saw the drained stop; UGV 0's view of it is unchanged (stale or
  // masked), since UGV 0 never approached.
  double after_u0 = world.ObserveUgv(0).stop_features.at({sensor_stop, 2});
  EXPECT_FLOAT_EQ(after_u0, before);
}

TEST(WorldTest, UavObservationShapesAndChannels) {
  World world(TinyCampus(), TinyParams());
  std::vector<UgvAction> release(2, {true, -1});
  std::vector<UavAction> idle(2);
  world.Step(release, idle);
  UavObservation obs = world.ObserveUav(0);
  int64_t g = world.params().obs_grid;
  EXPECT_EQ(obs.grid.shape(), (std::vector<int64_t>{3, g, g}));
  EXPECT_NEAR(obs.energy_fraction, 1.0, 1e-9);
  // Carrier marker: exactly one cell set in channel 2 (UAV sits on carrier).
  float carrier_sum = 0;
  for (int64_t iy = 0; iy < g; ++iy) {
    for (int64_t ix = 0; ix < g; ++ix) {
      carrier_sum += obs.grid.at({2, iy, ix});
    }
  }
  EXPECT_FLOAT_EQ(carrier_sum, 1.0f);
}

TEST(WorldTest, MetricsImproveWhenCollecting) {
  World world(TinyCampus(), TinyParams());
  std::vector<UgvAction> release(2, {true, -1});
  std::vector<UavAction> north(2);
  north[0] = {0.0, 100.0};
  north[1] = {0.0, 100.0};
  for (int t = 0; t < 10 && !world.Done(); ++t) world.Step(release, north);
  EpisodeMetrics m = world.Metrics();
  EXPECT_GT(m.data_collection_ratio, 0.0);
  EXPECT_GT(m.fairness, 0.0);
  EXPECT_GT(m.cooperation_factor, 0.0);
  EXPECT_GT(m.efficiency, 0.0);
}

TEST(WorldTest, ResetRestoresEverything) {
  World world(TinyCampus(), TinyParams());
  std::vector<UgvAction> release(2, {true, -1});
  std::vector<UavAction> north(2);
  north[0] = {0.0, 100.0};
  for (int t = 0; t < 5; ++t) world.Step(release, north);
  world.Reset(1);
  EXPECT_EQ(world.slot(), 0);
  EXPECT_EQ(world.total_releases(), 0);
  for (const SensorState& s : world.sensors()) {
    EXPECT_DOUBLE_EQ(s.remaining_mb, s.initial_mb);
  }
  EXPECT_DOUBLE_EQ(world.Metrics().data_collection_ratio, 0.0);
}

TEST(WorldTest, TracesRecordEverySlot) {
  World world(TinyCampus(), TinyParams());
  std::vector<UgvAction> actions(2);
  actions[0] = {false, world.stops().NearestStop({400, 200})};
  actions[1] = {true, -1};
  std::vector<UavAction> idle(2);
  for (int t = 0; t < 6; ++t) world.Step(actions, idle);
  EXPECT_EQ(world.ugv_trace()[0].size(), 6u);
  EXPECT_EQ(world.uav_trace()[1].size(), 6u);
}

TEST(WorldTest, RunsFullHorizonOnKaist) {
  WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 10;
  World world(MakeKaistCampus(), params);
  std::vector<UgvAction> actions(2, {true, -1});
  std::vector<UavAction> uav_actions(2);
  uav_actions[0] = {70.0, 70.0};
  uav_actions[1] = {-70.0, -70.0};
  while (!world.Done()) world.Step(actions, uav_actions);
  EXPECT_EQ(world.slot(), 10);
  EpisodeMetrics m = world.Metrics();
  EXPECT_GE(m.data_collection_ratio, 0.0);
  EXPECT_LE(m.data_collection_ratio, 1.0);
}

TEST(StopNetworkCacheTest, RepeatedQueriesHitCache) {
  StopNetwork network = BuildStopNetwork(TinyCampus(), 100.0);
  ASSERT_GT(network.num_stops(), 1);
  EXPECT_EQ(network.route_cache_misses(), 0);
  EXPECT_EQ(network.route_cache_hits(), 0);

  const graph::ShortestPaths& first = network.PathsFrom(0);
  EXPECT_EQ(network.route_cache_misses(), 1);
  EXPECT_EQ(network.route_cache_hits(), 0);

  // A repeated query returns the very same cached object without another
  // Dijkstra sweep.
  const graph::ShortestPaths& again = network.PathsFrom(0);
  EXPECT_EQ(network.route_cache_misses(), 1);
  EXPECT_EQ(network.route_cache_hits(), 1);
  EXPECT_EQ(&first, &again);

  // Cached answers match a fresh computation.
  graph::ShortestPaths fresh = graph::Dijkstra(network.graph, 0);
  EXPECT_EQ(fresh.dist, again.dist);
  EXPECT_EQ(fresh.parent, again.parent);

  // A different source is its own miss; invalidation resets everything.
  network.PathsFrom(1);
  EXPECT_EQ(network.route_cache_misses(), 2);
  network.InvalidateRouteCache();
  EXPECT_EQ(network.route_cache_misses(), 0);
  EXPECT_EQ(network.route_cache_hits(), 0);
  network.PathsFrom(0);
  EXPECT_EQ(network.route_cache_misses(), 1);
}

TEST(StopNetworkCacheTest, WorldConstructionWarmsTheCache) {
  // The World constructor routes its distance and next-hop tables through
  // the cache: exactly one Dijkstra per source.
  World world(TinyCampus(), TinyParams());
  EXPECT_EQ(world.stops().route_cache_misses(), world.stops().num_stops());
  EXPECT_EQ(world.stops().route_cache_hits(), 0);
}

}  // namespace
}  // namespace garl::env
