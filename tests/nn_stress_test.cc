// Stress / robustness tests for the tensor engine: larger shapes,
// numerical stability, end-to-end learning on a nonlinear task, and
// memory-behaviour checks of the autograd graph.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/distributions.h"
#include "nn/mlp.h"
#include "nn/ops.h"
#include "nn/optimizer.h"

namespace garl::nn {
namespace {

TEST(NnStressTest, LargeMatMulMatchesAccumulation) {
  // [64x128] x [128x32] against a direct scalar accumulation on a probe.
  Rng rng(1);
  Tensor a = Tensor::Zeros({64, 128});
  Tensor b = Tensor::Zeros({128, 32});
  for (float& v : a.mutable_data()) v = rng.UniformF(-1, 1);
  for (float& v : b.mutable_data()) v = rng.UniformF(-1, 1);
  Tensor c = MatMul(a, b);
  double expect = 0;
  for (int64_t k = 0; k < 128; ++k) {
    expect += static_cast<double>(a.at({17, k})) * b.at({k, 29});
  }
  EXPECT_NEAR(c.at({17, 29}), static_cast<float>(expect), 1e-3f);
}

TEST(NnStressTest, SoftmaxStableAtExtremeLogits) {
  Tensor logits = Tensor::FromVector({3}, {1000.0f, -1000.0f, 999.0f});
  auto p = Softmax(logits).data();
  for (float v : p) EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0f, 1e-5f);
  EXPECT_GT(p[0], p[2]);
  EXPECT_NEAR(p[1], 0.0f, 1e-6f);
}

TEST(NnStressTest, LogSoftmaxStableAtExtremeLogits) {
  Tensor logits = Tensor::FromVector({2}, {800.0f, -800.0f});
  auto ls = LogSoftmax(logits).data();
  EXPECT_NEAR(ls[0], 0.0f, 1e-5f);
  EXPECT_TRUE(std::isfinite(ls[1]));
}

TEST(NnStressTest, ExpOverflowStaysIEEE) {
  Tensor t = Tensor::FromVector({1}, {200.0f});
  EXPECT_TRUE(std::isinf(Exp(t).data()[0]));  // inf, not UB
}

TEST(NnStressTest, DeepChainBackwardCompletes) {
  // 200-deep elementwise chain: recursion-free topological backward.
  Tensor x = Tensor::FromVector({4}, {0.1f, 0.2f, 0.3f, 0.4f},
                                /*requires_grad=*/true);
  Tensor y = x;
  for (int i = 0; i < 200; ++i) y = Tanh(y);
  Sum(y).Backward();
  for (float g : x.grad()) EXPECT_TRUE(std::isfinite(g));
}

TEST(NnStressTest, MlpLearnsXor) {
  Rng rng(3);
  Mlp mlp({2, 8, 1}, Activation::kTanh, rng);
  Adam opt(mlp.Parameters(), 0.05f);
  const float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const float targets[4] = {0, 1, 1, 0};
  for (int epoch = 0; epoch < 500; ++epoch) {
    opt.ZeroGrad();
    std::vector<Tensor> losses;
    for (int i = 0; i < 4; ++i) {
      Tensor x = Tensor::FromVector({2}, {inputs[i][0], inputs[i][1]});
      Tensor pred = mlp.Forward(x);
      losses.push_back(nn::Reshape(
          MseLoss(pred, Tensor::FromVector({1}, {targets[i]})), {1}));
    }
    MulScalar(Sum(Concat(losses, 0)), 0.25f).Backward();
    opt.Step();
  }
  for (int i = 0; i < 4; ++i) {
    Tensor x = Tensor::FromVector({2}, {inputs[i][0], inputs[i][1]});
    float pred = mlp.Forward(x).data()[0];
    EXPECT_NEAR(pred, targets[i], 0.25f) << "case " << i;
  }
}

TEST(NnStressTest, NoGradForwardLeavesNoGraph) {
  Tensor w = Tensor::FromVector({2}, {1, 2}, /*requires_grad=*/true);
  Tensor out;
  {
    NoGradGuard guard;
    out = Mul(w, w);
  }
  EXPECT_FALSE(out.requires_grad());
  EXPECT_TRUE(out.impl()->parents.empty());
}

TEST(NnStressTest, RepeatedForwardsDoNotAccumulateLeakedParents) {
  // Each fresh forward builds its own graph; the previous one must be
  // droppable (shared_ptr graph, no cycles).
  Tensor w = Tensor::FromVector({4}, {1, 2, 3, 4}, /*requires_grad=*/true);
  std::weak_ptr<internal::TensorImpl> probe;
  {
    Tensor out = Sum(Square(w));
    probe = out.impl();
  }
  EXPECT_TRUE(probe.expired());  // graph freed once the handle is gone
}

TEST(NnStressTest, CategoricalEntropyGradientDirection) {
  // Maximizing entropy should flatten the distribution.
  Tensor logits = Tensor::FromVector({3}, {2.0f, 0.0f, -2.0f},
                                     /*requires_grad=*/true);
  Adam opt({logits}, 0.1f);
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    Categorical dist(logits);
    Neg(dist.Entropy()).Backward();
    opt.Step();
  }
  auto p = Categorical(logits).Probabilities();
  for (float v : p) EXPECT_NEAR(v, 1.0f / 3.0f, 0.02f);
}

TEST(NnStressTest, ClipGradNormHandlesZeroGradients) {
  Tensor w = Tensor::FromVector({3}, {1, 2, 3}, /*requires_grad=*/true);
  Adam opt({w}, 0.1f);
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(opt.ClipGradNorm(1.0f), 0.0f);  // no NaN from 0/0
}

TEST(NnStressTest, Conv2dBatchMatchesPerSample) {
  Rng rng(5);
  Tensor weight = Tensor::Zeros({2, 1, 3, 3});
  for (float& v : weight.mutable_data()) v = rng.UniformF(-1, 1);
  Tensor a = Tensor::Zeros({1, 1, 5, 5});
  Tensor b = Tensor::Zeros({1, 1, 5, 5});
  for (float& v : a.mutable_data()) v = rng.UniformF(-1, 1);
  for (float& v : b.mutable_data()) v = rng.UniformF(-1, 1);
  std::vector<float> batched_data = a.data();
  batched_data.insert(batched_data.end(), b.data().begin(),
                      b.data().end());
  Tensor batch = Tensor::FromVector({2, 1, 5, 5}, batched_data);
  Tensor out_batch = Conv2d(batch, weight, Tensor(), 1, 1);
  Tensor out_a = Conv2d(a, weight, Tensor(), 1, 1);
  Tensor out_b = Conv2d(b, weight, Tensor(), 1, 1);
  for (int64_t i = 0; i < out_a.numel(); ++i) {
    EXPECT_FLOAT_EQ(out_batch.data()[i], out_a.data()[i]);
    EXPECT_FLOAT_EQ(out_batch.data()[out_a.numel() + i], out_b.data()[i]);
  }
}

}  // namespace
}  // namespace garl::nn
