#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/distributions.h"
#include "nn/ops.h"

namespace garl::nn {
namespace {

TEST(CategoricalTest, ProbabilitiesMatchSoftmax) {
  Tensor logits = Tensor::FromVector({3}, {0, 1, 2});
  Categorical dist(logits);
  auto p = dist.Probabilities();
  float z = std::exp(0.0f) + std::exp(1.0f) + std::exp(2.0f);
  EXPECT_NEAR(p[0], std::exp(0.0f) / z, 1e-5f);
  EXPECT_NEAR(p[2], std::exp(2.0f) / z, 1e-5f);
}

TEST(CategoricalTest, ModeIsArgmax) {
  Categorical dist(Tensor::FromVector({4}, {0, 5, 2, 3}));
  EXPECT_EQ(dist.Mode(), 1);
}

TEST(CategoricalTest, SampleFrequenciesApproachProbabilities) {
  Categorical dist(Tensor::FromVector({3}, {0, 0, std::log(8.0f)}));
  Rng rng(21);
  std::vector<int> counts(3, 0);
  const int n = 10000;
  for (int i = 0; i < n; ++i) ++counts[dist.Sample(rng)];
  // probs = {0.1, 0.1, 0.8}
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.8, 0.03);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.03);
}

TEST(CategoricalTest, LogProbMatchesManual) {
  Tensor logits = Tensor::FromVector({3}, {1, 2, 3});
  Categorical dist(logits);
  auto p = dist.Probabilities();
  for (int64_t a = 0; a < 3; ++a) {
    EXPECT_NEAR(dist.LogProb(a).item(), std::log(p[a]), 1e-5f);
  }
}

TEST(CategoricalTest, LogProbGradFlowsToLogits) {
  Tensor logits = Tensor::FromVector({3}, {0.1f, 0.2f, 0.3f},
                                     /*requires_grad=*/true);
  Categorical dist(logits);
  dist.LogProb(1).Backward();
  // d logp(a)/d logit_j = 1{j=a} - p_j: positive at the action, negative
  // elsewhere.
  EXPECT_GT(logits.grad()[1], 0.0f);
  EXPECT_LT(logits.grad()[0], 0.0f);
  EXPECT_LT(logits.grad()[2], 0.0f);
}

TEST(CategoricalTest, EntropyOfUniformIsLogK) {
  Categorical dist(Tensor::FromVector({4}, {0, 0, 0, 0}));
  EXPECT_NEAR(dist.Entropy().item(), std::log(4.0f), 1e-5f);
}

TEST(CategoricalTest, EntropyOfPeakedIsSmall) {
  Categorical dist(Tensor::FromVector({4}, {100, 0, 0, 0}));
  EXPECT_LT(dist.Entropy().item(), 1e-3f);
}

TEST(DiagGaussianTest, ModeIsMean) {
  DiagGaussian dist(Tensor::FromVector({2}, {1, -2}),
                    Tensor::FromVector({2}, {0, 0}));
  auto mode = dist.Mode();
  EXPECT_FLOAT_EQ(mode[0], 1.0f);
  EXPECT_FLOAT_EQ(mode[1], -2.0f);
}

TEST(DiagGaussianTest, SampleMomentsMatch) {
  DiagGaussian dist(Tensor::FromVector({1}, {2.0f}),
                    Tensor::FromVector({1}, {std::log(0.5f)}));
  Rng rng(33);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    float v = dist.Sample(rng)[0];
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(DiagGaussianTest, LogProbMatchesClosedForm) {
  float mu = 0.7f, sigma = 1.3f, a = -0.2f;
  DiagGaussian dist(Tensor::FromVector({1}, {mu}),
                    Tensor::FromVector({1}, {std::log(sigma)}));
  float expected = -0.5f * (std::pow((a - mu) / sigma, 2.0f) +
                            std::log(2.0f * static_cast<float>(M_PI)) +
                            2.0f * std::log(sigma));
  EXPECT_NEAR(dist.LogProb({a}).item(), expected, 1e-5f);
}

TEST(DiagGaussianTest, LogProbHighestAtMean) {
  DiagGaussian dist(Tensor::FromVector({2}, {1, 1}),
                    Tensor::FromVector({2}, {0, 0}));
  float at_mean = dist.LogProb({1, 1}).item();
  float off_mean = dist.LogProb({2, 0.5f}).item();
  EXPECT_GT(at_mean, off_mean);
}

TEST(DiagGaussianTest, EntropyGrowsWithStd) {
  DiagGaussian narrow(Tensor::FromVector({1}, {0}),
                      Tensor::FromVector({1}, {-1.0f}));
  DiagGaussian wide(Tensor::FromVector({1}, {0}),
                    Tensor::FromVector({1}, {1.0f}));
  EXPECT_GT(wide.Entropy().item(), narrow.Entropy().item());
}

TEST(DiagGaussianTest, LogProbGradMovesMeanTowardAction) {
  Tensor mean = Tensor::FromVector({1}, {0.0f}, /*requires_grad=*/true);
  Tensor log_std = Tensor::FromVector({1}, {0.0f});
  DiagGaussian dist(mean, log_std);
  dist.LogProb({2.0f}).Backward();
  // d logp / d mu = (a - mu) / sigma^2 = 2 > 0.
  EXPECT_NEAR(mean.grad()[0], 2.0f, 1e-4f);
}

}  // namespace
}  // namespace garl::nn
