#include <gtest/gtest.h>

#include "env/campus.h"
#include "env/campus_factory.h"
#include "env/stop_network.h"

namespace garl::env {
namespace {

TEST(CampusFactoryTest, KaistMatchesPaperStatistics) {
  CampusSpec kaist = MakeKaistCampus();
  EXPECT_EQ(kaist.name, "KAIST");
  EXPECT_NEAR(kaist.width, 1539.63, 1e-6);
  EXPECT_NEAR(kaist.height, 1433.37, 1e-6);
  EXPECT_EQ(kaist.buildings.size(), 85u);
  EXPECT_EQ(kaist.sensors.size(), 138u);
}

TEST(CampusFactoryTest, UclaMatchesPaperStatistics) {
  CampusSpec ucla = MakeUclaCampus();
  EXPECT_EQ(ucla.name, "UCLA");
  EXPECT_NEAR(ucla.width, 1675.36, 1e-6);
  EXPECT_NEAR(ucla.height, 1737.15, 1e-6);
  EXPECT_EQ(ucla.buildings.size(), 163u);
  EXPECT_EQ(ucla.sensors.size(), 236u);
}

TEST(CampusFactoryTest, SensorDataInPaperRange) {
  for (const CampusSpec& campus : {MakeKaistCampus(), MakeUclaCampus()}) {
    for (const SensorSpec& s : campus.sensors) {
      EXPECT_GE(s.initial_data_mb, 1000.0);
      EXPECT_LE(s.initial_data_mb, 1500.0);
    }
  }
}

TEST(CampusFactoryTest, DeterministicForSeed) {
  CampusSpec a = MakeKaistCampus(7);
  CampusSpec b = MakeKaistCampus(7);
  ASSERT_EQ(a.sensors.size(), b.sensors.size());
  for (size_t i = 0; i < a.sensors.size(); ++i) {
    EXPECT_EQ(a.sensors[i].position, b.sensors[i].position);
    EXPECT_DOUBLE_EQ(a.sensors[i].initial_data_mb,
                     b.sensors[i].initial_data_mb);
  }
}

TEST(CampusFactoryTest, DifferentSeedsDiffer) {
  CampusSpec a = MakeKaistCampus(7);
  CampusSpec b = MakeKaistCampus(8);
  bool any_differ = false;
  for (size_t i = 0; i < a.sensors.size() && i < b.sensors.size(); ++i) {
    if (!(a.sensors[i].position == b.sensors[i].position)) {
      any_differ = true;
      break;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(CampusFactoryTest, BothCampusesValidate) {
  EXPECT_TRUE(ValidateCampus(MakeKaistCampus(), /*reach=*/260.0).ok());
  EXPECT_TRUE(ValidateCampus(MakeUclaCampus(), /*reach=*/360.0).ok());
}

TEST(CampusFactoryTest, UclaCenterIsSparse) {
  CampusSpec ucla = MakeUclaCampus();
  int centre = 0, west = 0, east = 0;
  for (const Rect& b : ucla.buildings) {
    double fx = b.Center().x / ucla.width;
    if (fx > 0.42 && fx < 0.58) ++centre;
    else if (fx <= 0.42) ++west;
    else ++east;
  }
  EXPECT_LT(centre, 12);  // lawn centre
  EXPECT_GT(west, 40);
  EXPECT_GT(east, 40);
}

TEST(CampusValidateTest, RejectsBadSpecs) {
  CampusSpec campus;
  campus.width = -1;
  EXPECT_FALSE(ValidateCampus(campus, 100).ok());

  campus = MakeKaistCampus();
  campus.sensors[0].position = {-10, -10};
  EXPECT_FALSE(ValidateCampus(campus, 260).ok());

  campus = MakeKaistCampus();
  campus.sensors[0].initial_data_mb = 0;
  EXPECT_FALSE(ValidateCampus(campus, 260).ok());

  campus = MakeKaistCampus();
  campus.roads.clear();
  EXPECT_FALSE(ValidateCampus(campus, 260).ok());
}

TEST(CampusValidateTest, RejectsRoadThroughBuilding) {
  CampusSpec campus = MakeKaistCampus();
  const Rect& b = campus.buildings[0];
  campus.roads.push_back({{b.x0 - 10, b.Center().y},
                          {b.x1 + 10, b.Center().y}});
  EXPECT_FALSE(ValidateCampus(campus, 260).ok());
}

TEST(StopNetworkTest, KaistIsConnectedAndSpaced) {
  CampusSpec kaist = MakeKaistCampus();
  StopNetwork net = BuildStopNetwork(kaist, 100.0);
  EXPECT_GT(net.num_stops(), 100);
  EXPECT_TRUE(net.graph.IsConnected());
  // Edge lengths stay near the requested spacing.
  for (int64_t b = 0; b < net.num_stops(); ++b) {
    for (const auto& e : net.graph.Neighbors(b)) {
      EXPECT_LE(e.weight, 160.0);
    }
  }
}

TEST(StopNetworkTest, UclaIsConnectedViaConnector) {
  CampusSpec ucla = MakeUclaCampus();
  StopNetwork net = BuildStopNetwork(ucla, 100.0);
  EXPECT_TRUE(net.graph.IsConnected());
}

TEST(StopNetworkTest, IntersectionsBecomeSharedNodes) {
  CampusSpec campus;
  campus.name = "cross";
  campus.width = 200;
  campus.height = 200;
  campus.roads.push_back({{0, 100}, {200, 100}});
  campus.roads.push_back({{100, 0}, {100, 200}});
  StopNetwork net = BuildStopNetwork(campus, 100.0);
  EXPECT_TRUE(net.graph.IsConnected());
  // The crossing point (100,100) must be a node of degree 4.
  int64_t cross = net.NearestStop({100, 100});
  EXPECT_NEAR(net.positions[cross].x, 100.0, 1.0);
  EXPECT_NEAR(net.positions[cross].y, 100.0, 1.0);
  EXPECT_EQ(net.graph.Degree(cross), 4);
}

TEST(StopNetworkTest, NearestStopFindsClosest) {
  CampusSpec campus;
  campus.name = "line";
  campus.width = 300;
  campus.height = 100;
  campus.roads.push_back({{0, 50}, {300, 50}});
  StopNetwork net = BuildStopNetwork(campus, 100.0);
  int64_t stop = net.NearestStop({290, 60});
  EXPECT_NEAR(net.positions[stop].x, 300.0, 1.0);
}

TEST(StopNetworkTest, SpacingControlsDensity) {
  CampusSpec campus = MakeKaistCampus();
  StopNetwork coarse = BuildStopNetwork(campus, 200.0);
  StopNetwork fine = BuildStopNetwork(campus, 50.0);
  EXPECT_GT(fine.num_stops(), coarse.num_stops());
}

}  // namespace
}  // namespace garl::env
