// Fixture: std::ifstream in tools/ is allowed (the ifstream ban is scoped to
// src/, where reads must flow through the fault-injectable ReadFileToString).
// Nothing in this file may fire.
#include <fstream>
#include <string>

std::string ReadToolInput(const char* path) {
  std::ifstream in(path, std::ios::binary);  // clean: tools/ may stream reads
  std::string line;
  std::getline(in, line);
  return line;
}
