// Fixture: a typo'd rule name in a suppression is itself a finding, so a
// misspelled allow() can never silently do nothing.

int Harmless() {
  return 1;  // garl-lint: allow(nondet-rnd) -- line 5: bad-suppression
}
