// Fixture: the clock exemption is file-scoped, not directory-scoped — the
// rest of src/obs/ must route time reads through obs::MonotonicNowNs().
#include <chrono>

long SneakyWallClock() {
  auto now = std::chrono::system_clock::now();  // line 6: nondet-time
  return now.time_since_epoch().count();
}
