// Fixture: src/obs/clock.* is the one sanctioned monotonic time source in
// library code (the real clock.cc wraps std::chrono::steady_clock behind
// obs::MonotonicNowNs()).
#include <chrono>

long SanctionedMonotonicNow() {
  auto now = std::chrono::steady_clock::now();  // clean: clock.* exemption
  return now.time_since_epoch().count();
}
