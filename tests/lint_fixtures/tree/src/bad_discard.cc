// Fixture: status-discard fires on dropped and (void)-laundered results of
// functions declared to return Status/StatusOr, including multi-line calls,
// and stays quiet on handled results.

namespace garl {

class Status {
 public:
  bool ok() const { return true; }
};

Status Fallible();
Status Fallible(int arg);

template <typename T>
class StatusOr {};

StatusOr<int> FallibleOr(int arg);

struct Saver {
  Status SaveState(const char* path);
};

void Handled(Saver& saver) {
  Status status = Fallible();
  if (!status.ok()) {
    return;
  }
  Status other = saver.SaveState("x");
  (void)other;  // a named-then-voided Status is visible in review; fine
}

void BadBareCall() {
  Fallible();  // line 34: status-discard
}

void BadVoidLaunder() {
  (void)Fallible(7);  // line 38: status-discard
}

void BadMemberCall(Saver& saver) {
  saver.SaveState(  // line 42: status-discard (multi-line statement)
      "checkpoint.bin");
}

void BadStatusOr() {
  FallibleOr(3);  // line 47: status-discard
}

}  // namespace garl
