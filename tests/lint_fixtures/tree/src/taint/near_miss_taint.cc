// det-taint near misses: clock values that stay in rt fields, det fields fed
// from pure values, and untainted sink arguments. None of this may fire.
#include <cstdint>

namespace garl::obs {

int64_t MonotonicNowNs();
uint32_t Crc32(const void* data, int64_t n);

struct IterationRecord {
  double policy_loss = 0.0;
  int64_t wall_ns = 0;
};

double PureLoss(int64_t step) { return static_cast<double>(step) * 0.5; }

void FillRecord(int64_t step) {
  IterationRecord rec;
  int64_t start = MonotonicNowNs();
  rec.policy_loss = PureLoss(step);       // pure value into a det field
  rec.wall_ns = MonotonicNowNs() - start;  // clock into an rt field
}

uint32_t DigestStep(int64_t step) {
  return Crc32(&step, sizeof(step));  // untainted argument
}

}  // namespace garl::obs
