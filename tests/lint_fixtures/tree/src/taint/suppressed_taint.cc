// det-taint suppression: the directive silences exactly the named rule.
#include <cstdint>

namespace garl::obs {

int64_t MonotonicNowNs();

struct IterationRecord {
  double policy_loss = 0.0;
};

void FillRecord() {
  IterationRecord rec;
  int64_t t = MonotonicNowNs();
  rec.policy_loss = static_cast<double>(t);  // garl-lint: allow(det-taint)
}

}  // namespace garl::obs
