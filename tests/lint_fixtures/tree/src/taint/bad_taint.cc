// det-taint true positives: nondeterministic values reaching det sinks.
#include <cstdint>

namespace garl::obs {

int64_t MonotonicNowNs();
uint32_t Crc32(const void* data, int64_t n);

struct IterationRecord {
  double policy_loss = 0.0;
  double efficiency = 0.0;
  int64_t wall_ns = 0;
};

// Returns a clock-derived value: taints every caller that uses the result.
int64_t JitterNs() {
  int64_t now = MonotonicNowNs();
  return now - 5;
}

void FillRecord() {
  IterationRecord rec;
  int64_t t = MonotonicNowNs();
  rec.policy_loss = static_cast<double>(t);
  rec.efficiency = static_cast<double>(JitterNs());
  rec.wall_ns = t;  // rt field: legitimately clock-derived
}

uint32_t DigestNow() {
  int64_t t = MonotonicNowNs();
  return Crc32(&t, sizeof(t));
}

// Det writes through a record-typed reference parameter are caught too.
void FillRecordRef(IterationRecord& rec) {
  rec.policy_loss = static_cast<double>(MonotonicNowNs());
}

}  // namespace garl::obs
