// Fixture: src/common/rng.* is the one place randomness sources are allowed
// (the real rng.cc seeds deterministic engines; a hardware fallback would
// live here too).
#include <random>

unsigned HardwareEntropy() {
  std::random_device device;  // clean: rng.* exemption
  return device();
}
