// Fixture: src/common/fs_util.* is the one sanctioned durable-write path;
// the direct-io rule must stay quiet here (the real fs_util.cc implements
// the atomic-rename write and EnsureDirectory on top of these primitives).
#include <filesystem>
#include <fstream>
#include <sys/stat.h>

void DurablePrimitives(const char* path) {
  std::ofstream out(path);  // clean: fs_util exemption
  ::mkdir(path, 0755);      // clean: fs_util exemption
  std::filesystem::remove_all(path);  // clean: fs_util exemption
}
