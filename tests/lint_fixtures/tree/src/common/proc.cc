// Fixture: src/common/proc.* is the one sanctioned process-spawn path; the
// process-spawn rule must stay quiet here (the real proc.cc implements
// SpawnProcess/PollProcess/SendSignal on top of these primitives).
#include <unistd.h>

void SpawnPrimitives(char* const* argv) {
  if (::fork() == 0) {       // clean: proc exemption
    ::execv(argv[0], argv);  // clean: proc exemption
  }
}
