// Fixture: a header with no guard at all -> include-guard at line 1.

int AnotherFixtureFunction();
