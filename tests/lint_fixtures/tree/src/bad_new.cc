// Fixture: raw-new-delete fires outside the tensor allocator; deleted
// special member functions are not raw deletes.

struct NoCopy {
  NoCopy(const NoCopy&) = delete;             // fine: deleted function
  NoCopy& operator=(const NoCopy&) = delete;  // fine: deleted function
};

int* BadNew() {
  return new int(42);  // line 10: raw-new-delete
}

void BadDelete(int* pointer) {
  delete pointer;  // line 14: raw-new-delete
}
