#ifndef GARL_GOOD_H_
#define GARL_GOOD_H_

// Fixture: canonical guard (path relative to src/), no violations.

namespace garl {

int EntirelyCleanFunction(int value);

}  // namespace garl

#endif  // GARL_GOOD_H_
