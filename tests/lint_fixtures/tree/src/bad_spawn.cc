// Fixture: raw process control outside src/common/proc.* — every child
// process must be spawned and signalled through the supervised funnel
// (proc::SpawnProcess / SendSignal in common/proc.h).
#include <cstdlib>
#include <spawn.h>
#include <unistd.h>

void SpawnDirectly(char* const* argv) {
  if (::fork() == 0) {       // finding: process-spawn (fork)
    ::execv(argv[0], argv);  // finding: process-spawn (execv)
  }
}

void ShellOut(const char* command) {
  std::system(command);  // finding: process-spawn (system)
  ::popen(command, "r");  // finding: process-spawn (popen)
}

void SpawnPosix(pid_t* pid, char* const* argv, char* const* envp) {
  ::posix_spawnp(pid, argv[0], nullptr, nullptr, argv, envp);  // finding
}

int UseMemberNamedFork(TaskRunner& runner) {
  return runner.fork(2);  // clean: member call, not a process fork
}
