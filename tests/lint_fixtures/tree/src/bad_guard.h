#ifndef WRONG_GUARD_NAME_H  // line 1: include-guard (canonical: GARL_BAD_GUARD_H_)
#define WRONG_GUARD_NAME_H

int FixtureFunction();

#endif  // WRONG_GUARD_NAME_H
