// Fixture: nondet-time fires on wall-clock reads in library code.
#include <chrono>
#include <ctime>

long BadTime() {
  return time(nullptr);  // line 6: nondet-time
}

long BadChrono() {
  auto now = std::chrono::steady_clock::now();  // line 10: nondet-time
  return now.time_since_epoch().count();
}

long FineRuntime(long timestamp) {
  // Passing timestamps in is the sanctioned pattern; "time(" in prose is ok.
  return timestamp + 1;
}
