// Fixture: direct file I/O outside src/common/fs_util.* — every write must
// flow through the durable path (crash-safe, retried, fault-injectable).
#include <filesystem>
#include <fstream>
#include <sys/stat.h>

void WriteDirectly(const char* path) {
  std::ofstream out(path);  // finding: direct-io (ofstream)
  out << "payload";
}

void MutateTree(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);  // finding: direct-io
}

void MakeDirRaw(const char* path) {
  ::mkdir(path, 0755);  // finding: direct-io (raw mkdir)
}

void ReadDirectly(const char* path) {
  std::ifstream in(path);  // finding: direct-io (ifstream — src/ only)
  (void)in;
}
