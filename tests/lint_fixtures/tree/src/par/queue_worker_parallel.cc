// parallel-unsafe coverage for the request-queue dispatcher shape used by
// serve::PolicyServer: a ParallelFor body lambda that drains pending queue
// entries through helper methods. The unsafe call sits two hops down
// (body -> DrainOne -> RecordMetrics), so this locks in that the transitive
// BFS follows method-call chains out of worker lambdas — observability
// calls must stay on the dispatcher thread, after the fan-out returns.
#include <cstdint>

namespace garl {

struct MetricsSnapshot {};
MetricsSnapshot Snapshot();
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 void (*body)(int64_t, int64_t));

class RequestQueueServer {
 public:
  void ServeSpan(int64_t pending);

 private:
  void DrainOne(int64_t index);
  void RecordMetrics();
};

void RequestQueueServer::RecordMetrics() {
  Snapshot();  // two hops from the worker lambda: must still be flagged
}

void RequestQueueServer::DrainOne(int64_t index) {
  (void)index;
  RecordMetrics();
}

void RequestQueueServer::ServeSpan(int64_t pending) {
  ParallelFor(0, pending, 1, [this](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) DrainOne(i);
  });
}

}  // namespace garl
