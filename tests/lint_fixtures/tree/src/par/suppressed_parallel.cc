// parallel-unsafe suppression: the directive silences exactly the named rule.
#include <cstdint>

namespace garl {

struct MetricsSnapshot {};
MetricsSnapshot Snapshot();
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 void (*body)(int64_t));

void RunBatch() {
  ParallelFor(0, 8, 1, [](int64_t i) {
    Snapshot();  // garl-lint: allow(parallel-unsafe)
    (void)i;
  });
}

}  // namespace garl
