// parallel-unsafe near misses: the non-reentrant call sits in a function
// that is NOT reachable from any ParallelFor body, and the body itself only
// calls a clean helper. None of this may fire.
#include <cstdint>

namespace garl {

struct MetricsSnapshot {};
MetricsSnapshot Snapshot();
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 void (*body)(int64_t));

void SequentialReport() {
  Snapshot();  // never called from a worker: fine
}

int64_t CleanKernel(int64_t i) { return i * 2; }

void RunBatch() {
  ParallelFor(0, 8, 1, [](int64_t i) { CleanKernel(i); });
}

}  // namespace garl
