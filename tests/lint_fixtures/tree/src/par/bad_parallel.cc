// parallel-unsafe true positives: a declared non-reentrant call lexically
// inside a ParallelFor body, and one in a helper reachable from the body.
#include <cstdint>

namespace garl {

struct MetricsSnapshot {};
MetricsSnapshot Snapshot();
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 void (*body)(int64_t));

void LeafHelper() {
  Snapshot();  // reachable from RunBatch's ParallelFor body
}

void RunBatch() {
  ParallelFor(0, 8, 1, [](int64_t i) {
    Snapshot();  // directly inside the body lambda
    LeafHelper();
    (void)i;
  });
}

}  // namespace garl
