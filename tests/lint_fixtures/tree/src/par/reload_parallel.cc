// parallel-unsafe coverage for hot reload: PolicyServer-style Reload takes
// the server state mutex and blocks on checkpoint I/O + plan compilation, so
// it is banned from ParallelFor-reachable code. The call sits one helper hop
// down from the worker lambda (body -> MaybeRefreshPlan -> Reload) and must
// be flagged; reload belongs on a control thread, never a pool worker.
#include <cstdint>

namespace garl {

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 void (*body)(int64_t));

class ReloadingServer {
 public:
  void ServeSpan(int64_t pending);
  int Reload(const char* checkpoint_dir);

 private:
  void MaybeRefreshPlan();
};

void ReloadingServer::MaybeRefreshPlan() {
  Reload("ckpt");  // one hop from the worker lambda: must be flagged
}

void ReloadingServer::ServeSpan(int64_t pending) {
  ParallelFor(0, pending, 1, [this](int64_t i) {
    (void)i;
    MaybeRefreshPlan();
  });
}

}  // namespace garl
