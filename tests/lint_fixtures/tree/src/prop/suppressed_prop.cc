// status-propagation suppression: both the discard and its escalation are
// silenced by naming each rule.
namespace garl {

struct Status {
  bool ok() const;
};

Status SaveThing();

void Helper() {
  SaveThing();  // garl-lint: allow(status-discard, status-propagation)
}

void Train() {
  Helper();
}

}  // namespace garl
