// status-propagation true positive: a fallible call's Status is dropped in a
// helper that sits on a live call chain from the Train entry point.
namespace garl {

struct Status {
  bool ok() const;
};

Status SaveThing();

void Helper() {
  SaveThing();
}

void Train() {
  Helper();
}

}  // namespace garl
