// status-propagation near miss: the discarding function is unreachable from
// any entry point, so only plain status-discard fires — no escalation.
namespace garl {

struct Status {
  bool ok() const;
};

Status SaveThing();

void OrphanHelper() {
  SaveThing();
}

}  // namespace garl
