// Fixture: every suppression form silences its rule (and only its rule).
#include <cstdlib>
#include <ctime>

int SameLineSuppression() {
  return std::rand();  // garl-lint: allow(nondet-rand) fixture justification
}

long NextLineSuppression() {
  // garl-lint: allow-next-line(nondet-time)
  return time(nullptr);
}

// garl-lint: allow-file(raw-new-delete)

int* FileSuppression() {
  return new int(1);  // clean: file-level allow
}

void FileSuppressionDelete(int* pointer) {
  delete pointer;  // clean: file-level allow
}

int WrongRuleDoesNotSuppress() {
  // The allow() names a different rule, so nondet-rand still fires.
  return std::rand();  // garl-lint: allow(nondet-time) -- line 26: nondet-rand
}
