// Fixture: unordered-serialize fires on hash-order iteration inside
// serialize/save/write-like functions and stays quiet elsewhere.
#include <string>
#include <unordered_map>
#include <vector>

namespace garl {

struct Blob {
  std::unordered_map<std::string, int> fields;
};

std::string SerializeBlob(const Blob& blob) {
  std::string out;
  for (const auto& [key, value] : blob.fields) {  // line 15: unordered-serialize
    out += key;
  }
  return out;
}

void SaveCounts(const std::unordered_map<int, int>& counts,
                std::vector<int>* out) {
  for (const auto& [key, value] : counts) {  // line 23: unordered-serialize
    out->push_back(value);
  }
}

int LookupOnly(const Blob& blob) {
  // Not serialize-ish: hash-order iteration is allowed in pure queries.
  int total = 0;
  for (const auto& [key, value] : blob.fields) {
    total += value;
  }
  return total;
}

}  // namespace garl
