// Fixture: the tensor allocator is the one place raw new/delete is allowed.

float* AllocateBuffer(int count) {
  return new float[count];  // clean: tensor allocator exemption
}

void ReleaseBuffer(float* buffer) {
  delete[] buffer;  // clean: tensor allocator exemption
}
