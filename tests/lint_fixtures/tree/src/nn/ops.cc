// Fixture: float-double-drift fires on `double` in kernel hot-path files
// (this path matches the real hot-path list entry src/nn/ops.cc).

float DriftyAccumulate(const float* values, int count) {
  double accumulator = 0.0;  // line 5: float-double-drift
  for (int i = 0; i < count; ++i) {
    accumulator += values[i];
  }
  return static_cast<float>(accumulator);  // no `double` token: clean
}

float FloatAccumulate(const float* values, int count) {
  float accumulator = 0.0f;
  for (int i = 0; i < count; ++i) {
    accumulator += values[i];
  }
  return accumulator;
}
