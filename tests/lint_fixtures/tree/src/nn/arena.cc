// Fixture: the arena allocator shares the tensor layer's raw-allocation
// exemption — slab new/delete here is the sanctioned funnel.

char* AllocateSlab(unsigned long bytes) {
  return new char[bytes];  // clean: arena allocator exemption
}

void ReleaseSlab(char* base) {
  delete[] base;  // clean: arena allocator exemption
}
