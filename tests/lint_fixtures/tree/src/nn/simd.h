#ifndef GARL_NN_SIMD_H_
#define GARL_NN_SIMD_H_

// Fixture: simd.h is on the kernel hot path, so a double temporary drifts.

namespace garl {

inline float WidenedAccumulate(const float* values, int count) {
  double total = 0.0;  // line 9: float-double-drift
  for (int i = 0; i < count; ++i) total += values[i];
  return static_cast<float>(total);
}

}  // namespace garl

#endif  // GARL_NN_SIMD_H_
