// Fixture: nondet-rand must fire on every C/std randomness source, and the
// same tokens in comments or strings must NOT fire.
#include <cstdlib>
#include <random>

int CommentsAndStringsAreSafe() {
  // std::rand() in a comment is fine; so is srand(1).
  const char* text = "std::rand() inside a string literal";
  return text[0];
}

int BadCRand() {
  return std::rand();  // line 13: nondet-rand
}

void BadSeed() {
  srand(42);  // line 17: nondet-rand
}

unsigned BadDevice() {
  std::random_device device;  // line 21: nondet-rand
  return device();
}
