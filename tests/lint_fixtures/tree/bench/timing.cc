// Fixture: bench/ may read clocks — that is the whole point of a benchmark.
#include <chrono>

long ElapsedNanos() {
  auto start = std::chrono::steady_clock::now();  // clean: bench/ exemption
  auto stop = std::chrono::high_resolution_clock::now();
  return (stop - start).count();
}
