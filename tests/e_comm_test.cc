#include <gtest/gtest.h>

#include <cmath>

#include "core/e_comm.h"
#include "graph/laplacian.h"
#include "graph/shortest_path.h"
#include "nn/ops.h"

namespace garl::core {
namespace {

rl::EnvContext SimpleContext() {
  graph::Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  rl::EnvContext context;
  context.num_stops = 4;
  context.num_ugvs = 3;
  context.laplacian = graph::NormalizedLaplacian(g);
  for (int64_t b = 0; b < 4; ++b) context.hops.push_back(graph::BfsHops(g, b));
  context.stop_xy = nn::Tensor::FromVector(
      {4, 2}, {0.1f, 0.1f, 0.3f, 0.2f, 0.6f, 0.7f, 0.9f, 0.9f});
  return context;
}

std::vector<nn::Tensor> RandomH(int64_t n, int64_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<nn::Tensor> h;
  for (int64_t i = 0; i < n; ++i) {
    nn::Tensor t = nn::Tensor::Zeros({dim});
    for (float& v : t.mutable_data()) v = rng.UniformF(-1, 1);
    h.push_back(t);
  }
  return h;
}

std::vector<nn::Tensor> Positions(
    const std::vector<std::pair<float, float>>& xy) {
  std::vector<nn::Tensor> g;
  for (auto [x, y] : xy) g.push_back(nn::Tensor::FromVector({2}, {x, y}));
  return g;
}

std::vector<std::vector<int64_t>> AllNeighbors(int64_t n) {
  std::vector<std::vector<int64_t>> neighbors(static_cast<size_t>(n));
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t o = 0; o < n; ++o) {
      if (o != u) neighbors[static_cast<size_t>(u)].push_back(o);
    }
  }
  return neighbors;
}

TEST(ECommTest, CommunicateShapes) {
  rl::EnvContext context = SimpleContext();
  Rng rng(1);
  ECommConfig config;
  config.hidden = 16;
  EComm comm(context, config, rng);
  auto h0 = RandomH(3, 16, 2);
  auto g0 = Positions({{0.1f, 0.1f}, {0.5f, 0.5f}, {0.9f, 0.2f}});
  EComm::State state = comm.Communicate(h0, g0, AllNeighbors(3));
  ASSERT_EQ(state.h.size(), 3u);
  EXPECT_EQ(state.h[0].shape(), (std::vector<int64_t>{16}));
  EXPECT_EQ(state.g[0].shape(), (std::vector<int64_t>{2}));
}

TEST(ECommTest, GeometryUpdateIsBounded) {
  rl::EnvContext context = SimpleContext();
  Rng rng(3);
  ECommConfig config;
  config.hidden = 16;
  config.layers = 3;
  EComm comm(context, config, rng);
  auto h0 = RandomH(3, 16, 4);
  auto g0 = Positions({{0.1f, 0.1f}, {0.5f, 0.5f}, {0.9f, 0.2f}});
  EComm::State state = comm.Communicate(h0, g0, AllNeighbors(3));
  for (size_t u = 0; u < 3; ++u) {
    for (int64_t d = 0; d < 2; ++d) {
      float drift = std::fabs(state.g[u].data()[d] - g0[u].data()[d]);
      EXPECT_LE(drift, config.layers * config.g_clip + 1e-5f);
    }
  }
}

// --- Equivariance properties (Section IV-C) -------------------------------

struct Transform {
  const char* name;
  float tx, ty;     // translation
  float angle_deg;  // rotation about the origin
};

class ECommEquivarianceTest : public ::testing::TestWithParam<Transform> {};

TEST_P(ECommEquivarianceTest, HInvariantGEquivariant) {
  const Transform& t = GetParam();
  float c = std::cos(t.angle_deg * static_cast<float>(M_PI) / 180.0f);
  float s = std::sin(t.angle_deg * static_cast<float>(M_PI) / 180.0f);
  auto apply = [&](float x, float y) {
    // rotate then translate
    return std::pair<float, float>(c * x - s * y + t.tx,
                                   s * x + c * y + t.ty);
  };

  rl::EnvContext context = SimpleContext();
  Rng rng(11);
  ECommConfig config;
  config.hidden = 12;
  config.layers = 2;
  EComm comm(context, config, rng);
  auto h0 = RandomH(3, 12, 5);
  std::vector<std::pair<float, float>> base = {
      {0.2f, 0.3f}, {0.6f, 0.4f}, {0.5f, 0.8f}};
  auto g0 = Positions(base);
  std::vector<std::pair<float, float>> moved;
  for (auto [x, y] : base) moved.push_back(apply(x, y));
  auto g0_t = Positions(moved);

  EComm::State original = comm.Communicate(h0, g0, AllNeighbors(3));
  EComm::State transformed = comm.Communicate(h0, g0_t, AllNeighbors(3));

  // Non-geometric features are invariant.
  for (size_t u = 0; u < 3; ++u) {
    for (int64_t i = 0; i < 12; ++i) {
      EXPECT_NEAR(original.h[u].data()[i], transformed.h[u].data()[i],
                  1e-4f)
          << t.name;
    }
  }
  // Geometric features are equivariant: T(g_out) == g_out(T(inputs)).
  for (size_t u = 0; u < 3; ++u) {
    auto [ex, ey] =
        apply(original.g[u].data()[0], original.g[u].data()[1]);
    EXPECT_NEAR(transformed.g[u].data()[0], ex, 1e-4f) << t.name;
    EXPECT_NEAR(transformed.g[u].data()[1], ey, 1e-4f) << t.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Transforms, ECommEquivarianceTest,
    ::testing::Values(Transform{"translate", 0.4f, -0.2f, 0.0f},
                      Transform{"rotate90", 0.0f, 0.0f, 90.0f},
                      Transform{"rotate37", 0.0f, 0.0f, 37.0f},
                      Transform{"rotate_translate", 0.1f, 0.2f, 180.0f}),
    [](const ::testing::TestParamInfo<Transform>& info) {
      return info.param.name;
    });

TEST(ECommTest, CloserPeersGetHigherWeight) {
  // With two peers at different distances, the nearer peer must dominate
  // the aggregated message. Probe by zeroing one sender's feature.
  rl::EnvContext context = SimpleContext();
  Rng rng(13);
  ECommConfig config;
  config.hidden = 8;
  config.layers = 1;
  EComm comm(context, config, rng);
  auto g0 = Positions({{0.5f, 0.5f}, {0.52f, 0.5f}, {0.9f, 0.9f}});
  auto h_near = RandomH(3, 8, 6);
  auto h_far = RandomH(3, 8, 6);
  // Perturb the near peer (1) vs the far peer (2) and compare the effect
  // on UGV 0's output.
  for (float& v : h_near[1].mutable_data()) v += 0.5f;
  for (float& v : h_far[2].mutable_data()) v += 0.5f;
  auto base = comm.Communicate(RandomH(3, 8, 6), g0, AllNeighbors(3));
  auto near = comm.Communicate(h_near, g0, AllNeighbors(3));
  auto far = comm.Communicate(h_far, g0, AllNeighbors(3));
  auto delta = [&](const EComm::State& s) {
    float d = 0.0f;
    for (int64_t i = 0; i < 8; ++i) {
      d += std::fabs(s.h[0].data()[i] - base.h[0].data()[i]);
    }
    return d;
  };
  EXPECT_GT(delta(near), delta(far));
}

TEST(ECommTest, ReadOutShapes) {
  rl::EnvContext context = SimpleContext();
  Rng rng(15);
  ECommConfig config;
  config.hidden = 16;
  EComm comm(context, config, rng);
  nn::Tensor h = nn::Tensor::Zeros({16});
  nn::Tensor g = nn::Tensor::FromVector({2}, {0.4f, 0.6f});
  EComm::Readout readout = comm.ReadOut(h, g, context.stop_xy);
  EXPECT_EQ(readout.feature.shape(), (std::vector<int64_t>{16}));
  EXPECT_EQ(readout.stop_preference.shape(), (std::vector<int64_t>{4}));
}

TEST(ECommTest, BuildNeighborhoodsRadius) {
  auto g0 = Positions({{0.0f, 0.0f}, {0.1f, 0.0f}, {1.0f, 1.0f}});
  auto neighbors = EComm::BuildNeighborhoods(g0, 0.2);
  EXPECT_EQ(neighbors[0], (std::vector<int64_t>{1}));
  EXPECT_EQ(neighbors[1], (std::vector<int64_t>{0}));
  // Isolated UGV keeps its nearest peer.
  ASSERT_EQ(neighbors[2].size(), 1u);
}

TEST(ECommTest, MaskNeighborhoodsCutsLinksBothWays) {
  auto neighbors = AllNeighbors(3);
  // UGV 0 flags its link to 2; the cut must apply in both directions even
  // though only one row carries the flag.
  std::vector<std::vector<uint8_t>> blocked = {
      {0, 0, 1}, {0, 0, 0}, {0, 0, 0}};
  EComm::MaskNeighborhoods(blocked, &neighbors);
  EXPECT_EQ(neighbors[0], (std::vector<int64_t>{1}));
  EXPECT_EQ(neighbors[1], (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(neighbors[2], (std::vector<int64_t>{1}));
}

TEST(ECommTest, MaskNeighborhoodsCanIsolateANode) {
  auto neighbors = AllNeighbors(3);
  std::vector<std::vector<uint8_t>> blocked = {
      {0, 1, 1}, {0, 0, 0}, {0, 0, 0}};
  EComm::MaskNeighborhoods(blocked, &neighbors);
  EXPECT_TRUE(neighbors[0].empty());
  EXPECT_EQ(neighbors[1], (std::vector<int64_t>{2}));
  EXPECT_EQ(neighbors[2], (std::vector<int64_t>{1}));
}

TEST(ECommTest, IsolatedNodeCommunicatesWithZeroMessageNotNaN) {
  rl::EnvContext context = SimpleContext();
  Rng rng(5);
  ECommConfig config;
  config.hidden = 8;
  config.layers = 2;
  EComm comm(context, config, rng);
  auto h0 = RandomH(3, 8, 11);
  auto g0 = Positions({{0.1f, 0.2f}, {0.5f, 0.5f}, {0.8f, 0.3f}});
  // A comm blackout severs every link of UGV 0 for the slot.
  auto neighbors = AllNeighbors(3);
  std::vector<std::vector<uint8_t>> blocked = {
      {0, 1, 1}, {0, 0, 0}, {0, 0, 0}};
  EComm::MaskNeighborhoods(blocked, &neighbors);
  EComm::State state = comm.Communicate(h0, g0, neighbors);
  ASSERT_EQ(state.h.size(), 3u);
  for (const nn::Tensor& h : state.h) {
    for (float v : h.data()) EXPECT_TRUE(std::isfinite(v));
  }
  for (const nn::Tensor& g : state.g) {
    for (float v : g.data()) EXPECT_TRUE(std::isfinite(v));
  }
  // The isolated node's geometric feature never moves: no peers, no update.
  for (int64_t d = 0; d < 2; ++d) {
    EXPECT_FLOAT_EQ(state.g[0].data()[d], g0[0].data()[d]);
  }
}

TEST(ECommTest, GradientsFlowToAllParameters) {
  rl::EnvContext context = SimpleContext();
  Rng rng(17);
  ECommConfig config;
  config.hidden = 8;
  config.layers = 2;
  EComm comm(context, config, rng);
  auto h0 = RandomH(3, 8, 9);
  for (auto& h : h0) {
    // make leaves so grads are retained through Communicate
    h = nn::Tensor::FromVector({8}, h.data(), /*requires_grad=*/true);
  }
  auto g0 = Positions({{0.1f, 0.2f}, {0.5f, 0.5f}, {0.8f, 0.3f}});
  EComm::State state = comm.Communicate(h0, g0, AllNeighbors(3));
  EComm::Readout readout =
      comm.ReadOut(state.h[0], state.g[0], context.stop_xy);
  nn::Sum(nn::Square(readout.feature)).Backward();
  int with_grad = 0;
  for (const nn::Tensor& p : comm.Parameters()) {
    float norm = 0.0f;
    for (float g : p.grad()) norm += g * g;
    if (norm > 0.0f) ++with_grad;
  }
  // phi_m/phi_h/phi_g of both layers + w3 + phi_u should mostly be live.
  EXPECT_GE(with_grad, static_cast<int>(comm.Parameters().size()) - 2);
}

}  // namespace
}  // namespace garl::core
