#include <gtest/gtest.h>

#include <memory>

#include "baselines/common.h"
#include "baselines/maddpg.h"
#include "baselines/random_policy.h"
#include "baselines/registry.h"
#include "baselines/runner.h"
#include "env/world.h"
#include "nn/ops.h"
#include "rl/ippo_trainer.h"

namespace garl::baselines {
namespace {

env::CampusSpec TinyCampus() {
  env::CampusSpec campus;
  campus.name = "tiny";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  campus.sensors.push_back({{260, 190}, 1200.0});
  campus.sensors.push_back({{200, 320}, 900.0});
  return campus;
}

env::WorldParams TinyParams() {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 14;
  params.release_slots = 2;
  return params;
}

struct WorldFixture {
  WorldFixture() : world(TinyCampus(), TinyParams()) {
    context = rl::MakeEnvContext(world);
  }
  env::World world;
  rl::EnvContext context;
};

TEST(CommonTest, DataEstimateOptimismForUnseen) {
  WorldFixture f;
  env::UgvObservation obs = f.world.ObserveUgv(0);
  nn::Tensor est = DataEstimate(f.context, obs);
  bool any_optimistic = false;
  for (int64_t b = 0; b < f.context.num_stops; ++b) {
    float v = est.data()[static_cast<size_t>(b)];
    EXPECT_GE(v, 0.0f);
    if (obs.stop_features.at({b, 2}) < 0.0f) {
      EXPECT_FLOAT_EQ(v, 0.4f);
      any_optimistic = true;
    }
  }
  EXPECT_TRUE(any_optimistic);
}

TEST(CommonTest, SeparationDepressesPeerStops) {
  WorldFixture f;
  env::UgvObservation obs = f.world.ObserveUgv(0);
  nn::Tensor greedy = StructurePrior(f.context, obs, 8, 0.0f);
  nn::Tensor multi = StructurePrior(f.context, obs, 8, 1.0f);
  // At the peer's stop the separated prior must be lower.
  int64_t peer_stop = obs.ugv_stops[1];
  EXPECT_LE(multi.data()[static_cast<size_t>(peer_stop)],
            greedy.data()[static_cast<size_t>(peer_stop)] + 1e-6f);
}

TEST(CommonTest, EncodeObservationDimAndRange) {
  WorldFixture f;
  env::UgvObservation obs = f.world.ObserveUgv(1);
  std::vector<float> enc = EncodeObservation(f.context, obs);
  EXPECT_EQ(static_cast<int64_t>(enc.size()), EncodedObservationDim(2));
  for (float v : enc) EXPECT_TRUE(std::isfinite(v));
}

TEST(RegistryTest, UnknownMethodIsError) {
  WorldFixture f;
  Rng rng(1);
  auto result = MakeUgvPolicy("NoSuchMethod", f.context, MethodOptions{},
                              rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, ListsContainPaperMethods) {
  EXPECT_EQ(AllMethods().size(), 9u);
  EXPECT_EQ(AllMethods().front(), "GARL");
  EXPECT_EQ(AblationMethods().size(), 4u);
}

// Every method must construct, produce well-formed outputs and finite
// features on a joint forward pass.
class MethodForwardTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MethodForwardTest, ForwardProducesValidOutputs) {
  WorldFixture f;
  Rng rng(3);
  auto policy_or = MakeUgvPolicy(GetParam(), f.context, MethodOptions{},
                                 rng);
  ASSERT_TRUE(policy_or.ok());
  auto policy = std::move(policy_or).value();
  EXPECT_EQ(policy->name(), GetParam());
  std::vector<env::UgvObservation> obs = {f.world.ObserveUgv(0),
                                          f.world.ObserveUgv(1)};
  auto outputs = policy->Forward(obs);
  ASSERT_EQ(outputs.size(), 2u);
  for (const auto& out : outputs) {
    ASSERT_EQ(out.release_logits.shape(), (std::vector<int64_t>{2}));
    ASSERT_EQ(out.target_logits.shape(),
              (std::vector<int64_t>{f.context.num_stops}));
    ASSERT_EQ(out.value.numel(), 1);
    for (float v : out.release_logits.data()) EXPECT_TRUE(std::isfinite(v));
    for (float v : out.target_logits.data()) EXPECT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodForwardTest,
    ::testing::Values("GARL", "GARL w/o MC", "GARL w/o E", "GARL w/o MC, E",
                      "CubicMap", "GAM", "GAT", "AE-Comm", "DGN", "IC3Net",
                      "CommNet", "MADDPG", "Random"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Trainable methods must survive one IPPO iteration.
class MethodTrainTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MethodTrainTest, OneIppoIterationRuns) {
  WorldFixture f;
  Rng rng(5);
  auto policy = std::move(
      MakeUgvPolicy(GetParam(), f.context, MethodOptions{}, rng)).value();
  rl::TrainConfig config;
  config.iterations = 1;
  config.epochs = 1;
  config.seed = 11;
  rl::IppoTrainer trainer(&f.world, policy.get(), nullptr, config);
  rl::IterationStats stats = trainer.RunIteration();
  EXPECT_TRUE(std::isfinite(stats.policy_loss));
}

INSTANTIATE_TEST_SUITE_P(
    IppoMethods, MethodTrainTest,
    ::testing::Values("CubicMap", "GAM", "GAT", "AE-Comm", "DGN", "IC3Net",
                      "CommNet"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(AeCommTest, AuxLossAvailableAfterForwardThenCleared) {
  WorldFixture f;
  Rng rng(7);
  auto policy = std::move(
      MakeUgvPolicy("AE-Comm", f.context, MethodOptions{}, rng)).value();
  std::vector<env::UgvObservation> obs = {f.world.ObserveUgv(0),
                                          f.world.ObserveUgv(1)};
  policy->Forward(obs);
  nn::Tensor aux = policy->ConsumeAuxLoss();
  ASSERT_TRUE(aux.defined());
  EXPECT_GE(aux.item(), 0.0f);
  EXPECT_FALSE(policy->ConsumeAuxLoss().defined());
}

TEST(RandomPolicyTest, UniformAndParameterless) {
  WorldFixture f;
  RandomUgvPolicy policy(f.context);
  EXPECT_TRUE(policy.Parameters().empty());
  auto outputs = policy.Forward({f.world.ObserveUgv(0)});
  for (float v : outputs[0].target_logits.data()) EXPECT_EQ(v, 0.0f);
}

TEST(MaddpgTest, TrainerRunsAndUpdatesActors) {
  WorldFixture f;
  Rng rng(9);
  MaddpgConfig config;
  config.updates_per_iteration = 3;
  config.batch = 4;
  auto policy = std::make_unique<MaddpgPolicy>(f.context, config, rng);
  std::vector<std::vector<float>> before;
  for (const auto& p : policy->Parameters()) before.push_back(p.data());
  MaddpgTrainer trainer(&f.world, policy.get(), config, 13);
  MaddpgTrainer::Stats stats = trainer.RunIteration();
  EXPECT_TRUE(std::isfinite(stats.critic_loss));
  bool changed = false;
  auto params = policy->Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].data() != before[i]) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(RunnerTest, TrainAndEvaluateRandom) {
  WorldFixture f;
  RunOptions options;
  options.train_iterations = 0;
  RunResult result = TrainAndEvaluate(f.world, "Random", options);
  EXPECT_EQ(result.method, "Random");
  EXPECT_GE(result.metrics.data_collection_ratio, 0.0);
}

TEST(RunnerTest, TrainAndEvaluateGarlQuick) {
  WorldFixture f;
  RunOptions options;
  options.train_iterations = 1;
  RunResult result = TrainAndEvaluate(f.world, "GARL", options);
  EXPECT_GE(result.metrics.efficiency, 0.0);
  EXPECT_LE(result.metrics.data_collection_ratio, 1.0);
}

}  // namespace
}  // namespace garl::baselines
