#include <gtest/gtest.h>

#include "core/mc_gcn.h"

#include "graph/shortest_path.h"
#include "graph/laplacian.h"
#include "nn/ops.h"

namespace garl::core {
namespace {

// Path graph of 6 stops at x = 0..5.
rl::EnvContext PathContext(int64_t n = 6) {
  graph::Graph g(n);
  for (int64_t i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1, 1.0);
  rl::EnvContext context;
  context.num_stops = n;
  context.num_ugvs = 2;
  context.laplacian = graph::NormalizedLaplacian(g);
  for (int64_t b = 0; b < n; ++b) {
    context.hops.push_back(graph::BfsHops(g, b));
  }
  context.stop_xy = nn::Tensor::Zeros({n, 2});
  for (int64_t b = 0; b < n; ++b) {
    context.stop_xy.set({b, 0}, static_cast<float>(b) / n);
  }
  return context;
}

nn::Tensor UniformStopFeatures(const rl::EnvContext& context) {
  nn::Tensor x = nn::Tensor::Zeros({context.num_stops, 3});
  for (int64_t b = 0; b < context.num_stops; ++b) {
    x.set({b, 0}, context.stop_xy.at({b, 0}));
    x.set({b, 2}, 0.5f);
  }
  return x;
}

TEST(HopRelevanceTest, ReciprocalOfHops) {
  rl::EnvContext context = PathContext();
  nn::Tensor s = HopRelevance(context, 0, /*threshold=*/8);
  EXPECT_FLOAT_EQ(s.data()[0], 1.0f);        // self: 1/(0+1)
  EXPECT_FLOAT_EQ(s.data()[1], 0.5f);        // 1/(1+1)
  EXPECT_FLOAT_EQ(s.data()[3], 0.25f);
}

TEST(HopRelevanceTest, ThresholdCutsFarNodes) {
  rl::EnvContext context = PathContext();
  nn::Tensor s = HopRelevance(context, 0, /*threshold=*/2);
  EXPECT_GT(s.data()[2], 0.0f);
  EXPECT_FLOAT_EQ(s.data()[3], 0.0f);  // beyond q: unreachable
  EXPECT_FLOAT_EQ(s.data()[5], 0.0f);
}

TEST(McGcnTest, StructureFeaturesSubtractOtherCenters) {
  rl::EnvContext context = PathContext();
  Rng rng(1);
  McGcn mc(context, McGcnConfig{}, rng);
  // UGV 0 at node 0, UGV 1 at node 5.
  nn::Tensor s = mc.StructureFeatures({0, 5}, 0);
  // Node 0: own 1.0 minus other's 1/6 -> strongly positive.
  EXPECT_GT(s.data()[0], 0.5f);
  // Node 5: own 1/6 minus other's 1.0 -> strongly negative.
  EXPECT_LT(s.data()[5], -0.5f);
  // Antisymmetry between the two viewpoints.
  nn::Tensor s1 = mc.StructureFeatures({0, 5}, 1);
  for (int64_t b = 0; b < 6; ++b) {
    EXPECT_NEAR(s.data()[b], -s1.data()[b], 1e-6f);
  }
}

TEST(McGcnTest, StructureFeaturesSingleUgvIsPlainRelevance) {
  rl::EnvContext context = PathContext();
  context.num_ugvs = 1;
  Rng rng(2);
  McGcn mc(context, McGcnConfig{}, rng);
  nn::Tensor s = mc.StructureFeatures({2}, 0);
  nn::Tensor r = mc.Relevance(2);
  EXPECT_EQ(s.data(), r.data());
}

TEST(McGcnTest, ForwardShapes) {
  rl::EnvContext context = PathContext();
  Rng rng(3);
  McGcnConfig config;
  config.layers = 2;
  config.out_dim = 24;
  McGcn mc(context, config, rng);
  McGcn::Output out = mc.Forward(UniformStopFeatures(context), {0, 5}, 0);
  EXPECT_EQ(out.feature.shape(), (std::vector<int64_t>{24}));
  EXPECT_EQ(out.attention.shape(), (std::vector<int64_t>{6}));
}

TEST(McGcnTest, AttentionIsPositiveAndNormalized) {
  rl::EnvContext context = PathContext();
  Rng rng(4);
  McGcn mc(context, McGcnConfig{}, rng);
  McGcn::Output out = mc.Forward(UniformStopFeatures(context), {0, 5}, 0);
  float sum = 0.0f;
  for (float c : out.attention.data()) {
    EXPECT_GT(c, 0.0f);
    sum += c;
  }
  // Softmax scaled by B: weights sum to B.
  EXPECT_NEAR(sum, 6.0f, 1e-3f);
}

TEST(McGcnTest, DifferentUgvsGetDifferentFeatures) {
  rl::EnvContext context = PathContext();
  context.num_ugvs = 3;
  Rng rng(5);
  McGcn mc(context, McGcnConfig{}, rng);
  nn::Tensor x = UniformStopFeatures(context);
  McGcn::Output a = mc.Forward(x, {0, 5, 2}, 0);
  McGcn::Output b = mc.Forward(x, {0, 5, 2}, 1);
  float diff = 0.0f;
  for (int64_t i = 0; i < a.feature.numel(); ++i) {
    diff += std::fabs(a.feature.data()[i] - b.feature.data()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(McGcnTest, GradientsFlowToAllParameters) {
  rl::EnvContext context = PathContext();
  Rng rng(6);
  McGcnConfig config;
  config.layers = 2;
  McGcn mc(context, config, rng);
  McGcn::Output out = mc.Forward(UniformStopFeatures(context), {1, 4}, 0);
  nn::Sum(nn::Square(out.feature)).Backward();
  for (const nn::Tensor& p : mc.Parameters()) {
    float norm = 0.0f;
    for (float g : p.grad()) norm += g * g;
    EXPECT_GT(norm, 0.0f) << "parameter with zero grad, shape "
                          << p.ShapeString();
  }
}

// Layer-count sweep: forward stays finite for L^MC in 1..5 (Table II range).
class McGcnLayersTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(McGcnLayersTest, ForwardFiniteAcrossDepths) {
  rl::EnvContext context = PathContext();
  Rng rng(7);
  McGcnConfig config;
  config.layers = GetParam();
  McGcn mc(context, config, rng);
  McGcn::Output out = mc.Forward(UniformStopFeatures(context), {0, 3}, 0);
  for (float v : out.feature.data()) EXPECT_TRUE(std::isfinite(v));
  for (float v : out.attention.data()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Depths, McGcnLayersTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace garl::core
