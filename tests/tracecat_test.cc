// Run-log file round trip as exercised by `garl_tracecat`: files written via
// OpenRunLog/AppendRecord validate and summarize, while truncated or corrupt
// lines yield a non-OK Status naming the offending line — never a crash.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/status.h"
#include "obs/run_log.h"

namespace garl::obs {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

IterationRecord MakeRecord(int64_t iteration) {
  IterationRecord r;
  r.iteration = iteration;
  r.episode_counter = (iteration + 1) * 3;
  r.policy_loss = 0.5 - 0.125 * static_cast<double>(iteration);
  r.value_loss = 2.0;
  r.entropy = 1.0;
  r.lr = 3e-4;
  r.diverged = iteration == 1;
  r.psi = 0.5;
  r.wall_ns = 1000 * (iteration + 1);
  r.spans = {{"trainer/collect", 3, 500}, {"trainer/update_ugv", 1, 300}};
  return r;
}

std::string WriteValidLog(const std::string& name, int64_t records) {
  std::string path = TempPath(name);
  StatusOr<RunLog> log = OpenRunLog(path);
  EXPECT_TRUE(log.ok()) << log.status().ToString();
  for (int64_t i = 0; i < records; ++i) {
    Status status = log.value().AppendRecord(MakeRecord(i));
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  return path;
}

TEST(TracecatTest, ValidFileValidates) {
  std::string path = WriteValidLog("tracecat_valid.jsonl", 3);
  Status status = ValidateRunLogFile(path);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(TracecatTest, EmptyFileIsValid) {
  std::string path = WriteValidLog("tracecat_empty.jsonl", 0);
  Status status = ValidateRunLogFile(path);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(TracecatTest, MissingFileIsNotFound) {
  Status status = ValidateRunLogFile(TempPath("tracecat_does_not_exist"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(TracecatTest, TruncatedLineReportsItsLineNumber) {
  std::string path = WriteValidLog("tracecat_truncated.jsonl", 2);
  {
    std::ifstream in(path);
    std::string first, second;
    ASSERT_TRUE(std::getline(in, first));
    ASSERT_TRUE(std::getline(in, second));
    in.close();
    std::ofstream out(path, std::ios::trunc);
    out << first << "\n" << second.substr(0, second.size() / 2) << "\n";
  }
  Status status = ValidateRunLogFile(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(":2:"), std::string::npos)
      << status.ToString();
}

TEST(TracecatTest, CorruptLineIsAnErrorNotACrash) {
  std::string path = WriteValidLog("tracecat_corrupt.jsonl", 1);
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"v\":1,\"det\":{},\"rt\":{}}\n";  // right shape, wrong schema
  }
  Status status = ValidateRunLogFile(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(":2:"), std::string::npos)
      << status.ToString();
  // An unsupported schema version is also a clean error.
  {
    std::ofstream out(path, std::ios::trunc);
    std::string line = FormatIterationRecord(MakeRecord(0));
    line.replace(line.find("\"v\":1"), 5, "\"v\":9");
    out << line << "\n";
  }
  status = ValidateRunLogFile(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos)
      << status.ToString();
}

TEST(TracecatTest, SummaryAggregatesRecordsAndSpans) {
  std::string path = WriteValidLog("tracecat_summary.jsonl", 3);
  StatusOr<RunLogSummary> summary = SummarizeRunLogFile(path);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  const RunLogSummary& s = summary.value();
  EXPECT_EQ(s.records, 3);
  EXPECT_EQ(s.first.iteration, 0);
  EXPECT_EQ(s.last.iteration, 2);
  EXPECT_EQ(s.mean_policy_loss, (0.5 + 0.375 + 0.25) / 3.0);
  EXPECT_EQ(s.diverged_iterations, 1);
  EXPECT_EQ(s.total_wall_ns, 1000 + 2000 + 3000);
  ASSERT_EQ(s.spans.size(), 2u);
  EXPECT_EQ(s.spans.at("trainer/collect").count, 9);
  EXPECT_EQ(s.spans.at("trainer/collect").total_ns, 1500);
  EXPECT_EQ(s.spans.at("trainer/update_ugv").total_ns, 900);
}

}  // namespace
}  // namespace garl::obs
