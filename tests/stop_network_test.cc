// StopNetwork route-cache semantics: the Dijkstra memo is lazy (first query
// per source pays the sweep, repeats are cache hits), invalidation clears
// both memo and counters, and copies — including whole-World copies taken by
// the parallel rollout layer — get private caches.

#include <gtest/gtest.h>

#include "env/stop_network.h"
#include "env/world.h"

namespace garl::env {
namespace {

CampusSpec CrossCampus() {
  CampusSpec campus;
  campus.name = "cross";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  return campus;
}

TEST(StopNetworkCacheTest, FirstQueryMissesRepeatHits) {
  StopNetwork network = BuildStopNetwork(CrossCampus(), 100.0);
  ASSERT_GE(network.num_stops(), 2);
  EXPECT_EQ(network.route_cache_hits(), 0);
  EXPECT_EQ(network.route_cache_misses(), 0);

  const graph::ShortestPaths& first = network.PathsFrom(0);
  EXPECT_EQ(network.route_cache_misses(), 1);
  EXPECT_EQ(network.route_cache_hits(), 0);

  const graph::ShortestPaths& again = network.PathsFrom(0);
  EXPECT_EQ(network.route_cache_misses(), 1);
  EXPECT_EQ(network.route_cache_hits(), 1);
  EXPECT_EQ(&first, &again);  // memoized object, not a recompute

  network.PathsFrom(1);  // new source: another lazy fill
  EXPECT_EQ(network.route_cache_misses(), 2);
  EXPECT_EQ(network.route_cache_hits(), 1);
}

TEST(StopNetworkCacheTest, InvalidateClearsMemoAndCounters) {
  StopNetwork network = BuildStopNetwork(CrossCampus(), 100.0);
  network.PathsFrom(0);
  network.PathsFrom(0);
  EXPECT_EQ(network.route_cache_misses(), 1);
  EXPECT_EQ(network.route_cache_hits(), 1);

  network.InvalidateRouteCache();
  EXPECT_EQ(network.route_cache_misses(), 0);
  EXPECT_EQ(network.route_cache_hits(), 0);
  network.PathsFrom(0);  // must re-run the sweep
  EXPECT_EQ(network.route_cache_misses(), 1);
}

TEST(StopNetworkCacheTest, CopiesGetPrivateCaches) {
  StopNetwork original = BuildStopNetwork(CrossCampus(), 100.0);
  original.PathsFrom(0);
  StopNetwork copy = original;  // snapshot: memo and counters come along
  EXPECT_EQ(copy.route_cache_misses(), 1);

  copy.PathsFrom(0);  // warm in the copied memo
  copy.PathsFrom(1);  // cold in both
  EXPECT_EQ(copy.route_cache_hits(), 1);
  EXPECT_EQ(copy.route_cache_misses(), 2);
  // The original never saw the copy's queries.
  EXPECT_EQ(original.route_cache_hits(), 0);
  EXPECT_EQ(original.route_cache_misses(), 1);
}

TEST(StopNetworkCacheTest, WorldCopiesGetPrivateCaches) {
  WorldParams params;
  params.num_ugvs = 1;
  params.uavs_per_ugv = 1;
  params.horizon = 5;
  World world(CrossCampus(), params);
  int64_t base_misses = world.stops().route_cache_misses();
  int64_t base_hits = world.stops().route_cache_hits();

  // This is the isolation the parallel rollout layer relies on: each worker
  // owns a World copy, so concurrent lazy fills never share a memo.
  World copy = world;
  copy.stops().PathsFrom(0);
  copy.stops().PathsFrom(0);
  EXPECT_EQ(world.stops().route_cache_misses(), base_misses);
  EXPECT_EQ(world.stops().route_cache_hits(), base_hits);
  EXPECT_GT(copy.stops().route_cache_hits(), base_hits);
}

}  // namespace
}  // namespace garl::env
