#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/ops.h"
#include "nn/tensor.h"

// Forward-value tests for every op; gradients are covered in autograd_test.

namespace garl::nn {
namespace {

Tensor Vec(std::vector<float> v) {
  int64_t n = static_cast<int64_t>(v.size());
  return Tensor::FromVector({n}, std::move(v));
}

TEST(OpsTest, AddSubMulDiv) {
  Tensor a = Vec({1, 2, 3});
  Tensor b = Vec({4, 5, 6});
  EXPECT_EQ(Add(a, b).data(), (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(Sub(a, b).data(), (std::vector<float>{-3, -3, -3}));
  EXPECT_EQ(Mul(a, b).data(), (std::vector<float>{4, 10, 18}));
  EXPECT_FLOAT_EQ(Div(a, b).data()[0], 0.25f);
}

TEST(OpsTest, ScalarOps) {
  Tensor a = Vec({1, -2});
  EXPECT_EQ(AddScalar(a, 3).data(), (std::vector<float>{4, 1}));
  EXPECT_EQ(MulScalar(a, -2).data(), (std::vector<float>{-2, 4}));
  EXPECT_EQ((-a).data(), (std::vector<float>{-1, 2}));
}

TEST(OpsTest, AddRowVector) {
  Tensor m = Tensor::FromVector({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor b = Vec({10, 20, 30});
  Tensor out = AddRowVector(m, b);
  EXPECT_EQ(out.data(), (std::vector<float>{10, 20, 30, 11, 21, 31}));
}

TEST(OpsTest, UnaryMath) {
  Tensor a = Vec({0.0f, 1.0f});
  EXPECT_FLOAT_EQ(Exp(a).data()[1], std::exp(1.0f));
  EXPECT_FLOAT_EQ(Log(Vec({std::exp(2.0f)})).data()[0], 2.0f);
  EXPECT_FLOAT_EQ(Sqrt(Vec({9.0f})).data()[0], 3.0f);
  EXPECT_FLOAT_EQ(Square(Vec({-3.0f})).data()[0], 9.0f);
}

TEST(OpsTest, Activations) {
  Tensor a = Vec({-1.0f, 2.0f});
  EXPECT_EQ(Relu(a).data(), (std::vector<float>{0, 2}));
  EXPECT_FLOAT_EQ(Tanh(a).data()[1], std::tanh(2.0f));
  EXPECT_NEAR(Sigmoid(Vec({0.0f})).data()[0], 0.5f, 1e-6f);
}

TEST(OpsTest, ClipClamps) {
  Tensor a = Vec({-5, 0.5, 5});
  EXPECT_EQ(Clip(a, -1, 1).data(), (std::vector<float>{-1, 0.5, 1}));
}

TEST(OpsTest, MatMul) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(c.data(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(OpsTest, MatMulIdentity) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor c = MatMul(a, Tensor::Eye(2));
  EXPECT_EQ(c.data(), a.data());
}

TEST(OpsTest, Transpose) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(t.data(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Sum(a).item(), 21.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 3.5f);
  EXPECT_EQ(SumDim(a, 0).data(), (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(SumDim(a, 1).data(), (std::vector<float>{6, 15}));
}

TEST(OpsTest, NormAndDot) {
  Tensor a = Vec({3, 4});
  EXPECT_NEAR(Norm(a).item(), 5.0f, 1e-4f);
  EXPECT_FLOAT_EQ(Dot(a, Vec({1, 2})).item(), 11.0f);
}

TEST(OpsTest, SoftmaxSumsToOne) {
  Tensor a = Vec({1, 2, 3});
  auto p = Softmax(a).data();
  float total = p[0] + p[1] + p[2];
  EXPECT_NEAR(total, 1.0f, 1e-6f);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(OpsTest, SoftmaxShiftInvariant) {
  auto p1 = Softmax(Vec({1, 2, 3})).data();
  auto p2 = Softmax(Vec({101, 102, 103})).data();
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(p1[i], p2[i], 1e-6f);
}

TEST(OpsTest, SoftmaxRowwiseFor2d) {
  Tensor a = Tensor::FromVector({2, 2}, {0, 0, 10, 0});
  auto p = Softmax(a).data();
  EXPECT_NEAR(p[0], 0.5f, 1e-6f);
  EXPECT_NEAR(p[1], 0.5f, 1e-6f);
  EXPECT_GT(p[2], 0.99f);
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = Vec({0.3f, -1.2f, 2.0f});
  auto ls = LogSoftmax(a).data();
  auto s = Softmax(a).data();
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(ls[i], std::log(s[i]), 1e-5f);
}

TEST(OpsTest, ReshapePreservesData) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  EXPECT_EQ(r.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(r.data(), a.data());
}

TEST(OpsTest, RowsSlice) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor r = Rows(a, 1, 2);
  EXPECT_EQ(r.data(), (std::vector<float>{3, 4, 5, 6}));
}

TEST(OpsTest, IndexRowsGathersAndRepeats) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = IndexRows(a, {2, 0, 2});
  EXPECT_EQ(g.data(), (std::vector<float>{5, 6, 1, 2, 5, 6}));
}

TEST(OpsTest, Gather1d) {
  EXPECT_FLOAT_EQ(Gather1d(Vec({1, 2, 3}), 1).item(), 2.0f);
}

TEST(OpsTest, ConcatDim0AndDim1) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({1, 2}, {3, 4});
  EXPECT_EQ(Concat({a, b}, 0).data(), (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(Concat({a, b}, 1).data(), (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(Concat({a, b}, 1).shape(), (std::vector<int64_t>{1, 4}));
  EXPECT_EQ(Concat({Vec({1}), Vec({2, 3})}, 0).data(),
            (std::vector<float>{1, 2, 3}));
}

TEST(OpsTest, StackMakesMatrix) {
  Tensor s = Stack({Vec({1, 2}), Vec({3, 4}), Vec({5, 6})});
  EXPECT_EQ(s.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(s.data(), (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(OpsTest, MseLoss) {
  Tensor pred = Vec({1, 2});
  Tensor target = Vec({0, 0});
  EXPECT_FLOAT_EQ(MseLoss(pred, target).item(), 2.5f);
}

TEST(OpsTest, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Tensor input = Tensor::FromVector({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor weight = Tensor::FromVector({1, 1, 1, 1}, {1});
  Tensor out = Conv2d(input, weight, Tensor(), 1, 0);
  EXPECT_EQ(out.data(), input.data());
}

TEST(OpsTest, Conv2dSumKernel) {
  // 2x2 all-ones kernel, stride 1, no padding: sums each window.
  Tensor input = Tensor::FromVector({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor weight = Tensor::FromVector({1, 1, 2, 2}, {1, 1, 1, 1});
  Tensor out = Conv2d(input, weight, Tensor(), 1, 0);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out.data()[0], 10.0f);
}

TEST(OpsTest, Conv2dStrideAndPadding) {
  Tensor input = Tensor::FromVector({1, 1, 3, 3},
                                    {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor weight = Tensor::FromVector({1, 1, 3, 3},
                                     {0, 0, 0, 0, 1, 0, 0, 0, 0});
  // Center-tap kernel with padding 1 and stride 2 samples corners of
  // the padded image's valid centers.
  Tensor out = Conv2d(input, weight, Tensor(), 2, 1);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 1, 2, 2}));
  EXPECT_EQ(out.data(), (std::vector<float>{1, 3, 7, 9}));
}

TEST(OpsTest, Conv2dBiasApplied) {
  Tensor input = Tensor::FromVector({1, 1, 1, 1}, {0});
  Tensor weight = Tensor::FromVector({2, 1, 1, 1}, {1, 1});
  Tensor bias = Vec({5, -3});
  Tensor out = Conv2d(input, weight, bias, 1, 0);
  EXPECT_EQ(out.data(), (std::vector<float>{5, -3}));
}

TEST(OpsTest, NoGradGuardDisablesGraph) {
  Tensor a = Tensor::FromVector({2}, {1, 2}, /*requires_grad=*/true);
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradModeEnabled());
    Tensor b = MulScalar(a, 2.0f);
    EXPECT_FALSE(b.requires_grad());
  }
  EXPECT_TRUE(GradModeEnabled());
  Tensor c = MulScalar(a, 2.0f);
  EXPECT_TRUE(c.requires_grad());
}

// Kernel determinism contract: parallel GEMM/conv/reduction kernels chunk
// their outputs so results are bit-identical for any thread count.
TEST(OpsTest, KernelsBitIdenticalAcrossThreadCounts) {
  auto random_matrix = [](int64_t n, int64_t m, uint64_t seed) {
    Rng rng(seed);
    std::vector<float> v(static_cast<size_t>(n * m));
    for (float& x : v) x = rng.NormalF();
    // Sprinkle zeros to exercise the sparse-skip path.
    for (size_t i = 0; i < v.size(); i += 7) v[i] = 0.0f;
    return Tensor::FromVector({n, m}, std::move(v), /*requires_grad=*/true);
  };
  auto run = [&](int64_t threads) {
    ThreadPool::SetGlobalThreads(threads);
    Tensor a = random_matrix(37, 53, 1);
    Tensor b = random_matrix(53, 29, 2);
    Tensor c = MatMul(a, b);
    Tensor loss = Sum(Mul(Softmax(c), c));
    loss.Backward();
    std::vector<std::vector<float>> out = {c.data(), a.grad(), b.grad()};
    ThreadPool::SetGlobalThreads(1);
    return out;
  };
  auto one = run(1);
  auto four = run(4);
  // Bitwise equality, not approximate: the accumulation order is fixed.
  EXPECT_EQ(one, four);
}

}  // namespace
}  // namespace garl::nn
